#ifndef CALYX_IR_CELL_H
#define CALYX_IR_CELL_H

#include <cstdint>
#include <vector>

#include "ir/attributes.h"
#include "ir/port.h"

namespace calyx {

/**
 * An instance of a primitive or of another component (paper §3.2's
 * `cells` section). Ports are resolved at construction time from the
 * prototype and the instantiation parameters.
 *
 * Names are interned Symbols; in addition every cell carries a dense
 * per-component id (its position in Component::cells()), maintained by
 * the owning Component across removals.
 */
class Cell
{
  public:
    Cell(Symbol name, Symbol type, std::vector<uint64_t> params,
         std::vector<PortDef> resolved_ports, bool is_primitive)
        : nameVal(name), typeVal(type), paramsVal(std::move(params)),
          ports(std::move(resolved_ports)), primitive(is_primitive)
    {}

    Symbol name() const { return nameVal; }

    /**
     * Dense index of this cell within its component (stable until a
     * cell is removed, at which point later ids shift down).
     */
    uint32_t id() const { return idVal; }

    /** Primitive or component name this cell instantiates. */
    Symbol type() const { return typeVal; }

    const std::vector<uint64_t> &params() const { return paramsVal; }

    /** True for std_* / extern primitives, false for component instances. */
    bool isPrimitive() const { return primitive; }

    const std::vector<PortDef> &portDefs() const { return ports; }

    /** Whether the instance exposes a port called `port`. */
    bool hasPort(Symbol port) const;

    /** Width of `port`; fatal() if absent. */
    Width portWidth(Symbol port) const;

    /** Direction of `port`; fatal() if absent. */
    Direction portDir(Symbol port) const;

    /**
     * Two cells are interchangeable for sharing iff they instantiate the
     * same prototype with the same parameters. O(1) on the type name.
     */
    bool sameSignature(const Cell &other) const
    {
        return typeVal == other.typeVal && paramsVal == other.paramsVal;
    }

    Attributes &attrs() { return attributes; }
    const Attributes &attrs() const { return attributes; }

  private:
    friend class Component; // maintains nameVal (rename) and idVal

    /** Error path for portWidth/portDir: did-you-mean fatal. */
    [[noreturn]] void noSuchPort(Symbol port) const;

    void rename(Symbol n) { nameVal = n; }
    void setId(uint32_t id) { idVal = id; }

    Symbol nameVal;
    Symbol typeVal;
    uint32_t idVal = 0;
    std::vector<uint64_t> paramsVal;
    std::vector<PortDef> ports;
    bool primitive;
    Attributes attributes;
};

} // namespace calyx

#endif // CALYX_IR_CELL_H
