#ifndef CALYX_IR_CELL_H
#define CALYX_IR_CELL_H

#include <cstdint>
#include <string>
#include <vector>

#include "ir/attributes.h"
#include "ir/port.h"

namespace calyx {

/**
 * An instance of a primitive or of another component (paper §3.2's
 * `cells` section). Ports are resolved at construction time from the
 * prototype and the instantiation parameters.
 */
class Cell
{
  public:
    Cell(std::string name, std::string type, std::vector<uint64_t> params,
         std::vector<PortDef> resolved_ports, bool is_primitive)
        : nameVal(std::move(name)), typeVal(std::move(type)),
          paramsVal(std::move(params)), ports(std::move(resolved_ports)),
          primitive(is_primitive)
    {}

    const std::string &name() const { return nameVal; }
    void rename(std::string n) { nameVal = std::move(n); }

    /** Primitive or component name this cell instantiates. */
    const std::string &type() const { return typeVal; }

    const std::vector<uint64_t> &params() const { return paramsVal; }

    /** True for std_* / extern primitives, false for component instances. */
    bool isPrimitive() const { return primitive; }

    const std::vector<PortDef> &portDefs() const { return ports; }

    /** Whether the instance exposes a port called `port`. */
    bool hasPort(const std::string &port) const;

    /** Width of `port`; fatal() if absent. */
    Width portWidth(const std::string &port) const;

    /** Direction of `port`; fatal() if absent. */
    Direction portDir(const std::string &port) const;

    /**
     * Two cells are interchangeable for sharing iff they instantiate the
     * same prototype with the same parameters.
     */
    bool sameSignature(const Cell &other) const
    {
        return typeVal == other.typeVal && paramsVal == other.paramsVal;
    }

    Attributes &attrs() { return attributes; }
    const Attributes &attrs() const { return attributes; }

  private:
    std::string nameVal;
    std::string typeVal;
    std::vector<uint64_t> paramsVal;
    std::vector<PortDef> ports;
    bool primitive;
    Attributes attributes;
};

} // namespace calyx

#endif // CALYX_IR_CELL_H
