#include "ir/builder.h"

namespace calyx {

ComponentBuilder
ComponentBuilder::create(Context &ctx, Symbol name)
{
    Component &comp = ctx.addComponent(name);
    return ComponentBuilder(ctx, comp);
}

Cell &
ComponentBuilder::cell(Symbol name, Symbol type,
                       const std::vector<uint64_t> &params)
{
    return comp->addCell(name, type, params, *ctx);
}

Cell &
ComponentBuilder::reg(Symbol name, Width width)
{
    return cell(name, "std_reg", {width});
}

Cell &
ComponentBuilder::add(Symbol name, Width width)
{
    return cell(name, "std_add", {width});
}

Cell &
ComponentBuilder::mem1d(Symbol name, Width width, uint64_t size)
{
    return cell(name, "std_mem_d1", {width, size, bitsNeeded(size - 1)});
}

Group &
ComponentBuilder::group(Symbol name)
{
    return comp->addGroup(name);
}

Group &
ComponentBuilder::regWriteGroup(Symbol group_name, Symbol reg_cell,
                                const PortRef &value)
{
    Group &g = comp->addGroup(group_name);
    g.add(cellPort(reg_cell, "in"), value);
    g.add(cellPort(reg_cell, "write_en"), constant(1, 1));
    g.add(g.doneHole(), cellPort(reg_cell, "done"));
    g.attrs().set(Attributes::staticAttr, regLatency);
    return g;
}

ControlPtr
ComponentBuilder::enable(Symbol group)
{
    return std::make_unique<Enable>(group);
}

ControlPtr
ComponentBuilder::seq(std::vector<ControlPtr> stmts)
{
    return std::make_unique<Seq>(std::move(stmts));
}

ControlPtr
ComponentBuilder::par(std::vector<ControlPtr> stmts)
{
    return std::make_unique<Par>(std::move(stmts));
}

ControlPtr
ComponentBuilder::ifStmt(const PortRef &port, Symbol cond,
                         ControlPtr t, ControlPtr f)
{
    return std::make_unique<If>(port, cond, std::move(t), std::move(f));
}

ControlPtr
ComponentBuilder::whileStmt(const PortRef &port, Symbol cond,
                            ControlPtr body)
{
    return std::make_unique<While>(port, cond, std::move(body));
}

} // namespace calyx
