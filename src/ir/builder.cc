#include "ir/builder.h"

namespace calyx {

ComponentBuilder
ComponentBuilder::create(Context &ctx, const std::string &name)
{
    Component &comp = ctx.addComponent(name);
    return ComponentBuilder(ctx, comp);
}

Cell &
ComponentBuilder::cell(const std::string &name, const std::string &type,
                       const std::vector<uint64_t> &params)
{
    return comp->addCell(name, type, params, *ctx);
}

Cell &
ComponentBuilder::reg(const std::string &name, Width width)
{
    return cell(name, "std_reg", {width});
}

Cell &
ComponentBuilder::add(const std::string &name, Width width)
{
    return cell(name, "std_add", {width});
}

Cell &
ComponentBuilder::mem1d(const std::string &name, Width width, uint64_t size)
{
    return cell(name, "std_mem_d1", {width, size, bitsNeeded(size - 1)});
}

Group &
ComponentBuilder::group(const std::string &name)
{
    return comp->addGroup(name);
}

Group &
ComponentBuilder::regWriteGroup(const std::string &group_name,
                                const std::string &reg_cell,
                                const PortRef &value)
{
    Group &g = comp->addGroup(group_name);
    g.add(cellPort(reg_cell, "in"), value);
    g.add(cellPort(reg_cell, "write_en"), constant(1, 1));
    g.add(g.doneHole(), cellPort(reg_cell, "done"));
    g.attrs().set(Attributes::staticAttr, regLatency);
    return g;
}

ControlPtr
ComponentBuilder::enable(const std::string &group)
{
    return std::make_unique<Enable>(group);
}

ControlPtr
ComponentBuilder::seq(std::vector<ControlPtr> stmts)
{
    return std::make_unique<Seq>(std::move(stmts));
}

ControlPtr
ComponentBuilder::par(std::vector<ControlPtr> stmts)
{
    return std::make_unique<Par>(std::move(stmts));
}

ControlPtr
ComponentBuilder::ifStmt(const PortRef &port, const std::string &cond,
                         ControlPtr t, ControlPtr f)
{
    return std::make_unique<If>(port, cond, std::move(t), std::move(f));
}

ControlPtr
ComponentBuilder::whileStmt(const PortRef &port, const std::string &cond,
                            ControlPtr body)
{
    return std::make_unique<While>(port, cond, std::move(body));
}

} // namespace calyx
