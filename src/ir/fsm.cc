#include "ir/fsm.h"

#include <sstream>

#include "ir/component.h"
#include "support/error.h"

namespace calyx {

const char *
fsmEncodingName(FsmEncoding e)
{
    switch (e) {
      case FsmEncoding::Binary:
        return "binary";
      case FsmEncoding::OneHot:
        return "one-hot";
    }
    panic("bad FsmEncoding");
}

uint32_t
FsmMachine::addState(Symbol name, int64_t span)
{
    if (span < 1)
        fatal("fsm ", nameVal, ": state ", name, " has span ", span);
    FsmState s;
    s.name = name;
    s.span = span;
    stateList.push_back(std::move(s));
    return static_cast<uint32_t>(stateList.size() - 1);
}

int64_t
FsmMachine::totalCodes() const
{
    int64_t total = 0;
    for (const auto &s : stateList)
        total += s.span;
    return total;
}

int64_t
FsmMachine::transitionCount() const
{
    int64_t total = 0;
    for (const auto &s : stateList)
        total += static_cast<int64_t>(s.transitions.size());
    return total;
}

int64_t
FsmMachine::counterStates() const
{
    int64_t total = 0;
    for (const auto &s : stateList)
        total += s.span > 1 ? 1 : 0;
    return total;
}

void
FsmMachine::compact(const std::vector<bool> &keep)
{
    constexpr uint32_t dropped = 0xFFFFFFFF;
    std::vector<uint32_t> remap(stateList.size(), dropped);
    std::vector<FsmState> kept;
    for (uint32_t id = 0; id < stateList.size(); ++id) {
        if (id < keep.size() && keep[id]) {
            remap[id] = static_cast<uint32_t>(kept.size());
            kept.push_back(std::move(stateList[id]));
        }
    }
    for (auto &s : kept) {
        for (auto &t : s.transitions) {
            if (remap[t.target] == dropped)
                panic("fsm compact: kept state targets a dropped state");
            t.target = remap[t.target];
        }
    }
    if (remap[entryVal] == dropped)
        panic("fsm compact: entry state dropped");
    entryVal = remap[entryVal];
    stateList = std::move(kept);
}

std::string
FsmMachine::str() const
{
    std::ostringstream os;
    os << "fsm " << nameVal.str() << " {";
    if (realized()) {
        os << " // group=" << groupVal.str() << " encoding="
           << fsmEncodingName(encodingVal);
        if (!registerVal.empty())
            os << " register=" << registerVal.str();
    }
    os << "\n";
    for (uint32_t id = 0; id < stateList.size(); ++id) {
        const FsmState &s = stateList[id];
        os << "  state " << id << " \"" << s.name.str() << "\"";
        if (s.span != 1)
            os << " span=" << s.span;
        if (id == entryVal)
            os << " entry";
        if (s.accepting)
            os << " accepting";
        os << " {\n";
        for (const auto &a : s.actions) {
            os << "    ";
            if (a.continuous)
                os << "continuous ";
            if (a.offset != 0 || a.length != FsmAction::kWholeSpan) {
                os << "@[" << a.offset << ", "
                   << (a.length == FsmAction::kWholeSpan
                           ? s.span - a.offset
                           : a.length)
                   << ") ";
            }
            os << a.dst.str() << " = ";
            if (!a.guard->isTrue())
                os << a.guard->str() << " ? ";
            os << a.src.str() << ";\n";
        }
        for (const auto &t : s.transitions) {
            os << "    ";
            if (!t.guard->isTrue())
                os << t.guard->str() << " ";
            os << "-> " << t.target << ";\n";
        }
        os << "  }\n";
    }
    os << "}\n";
    return os.str();
}

FsmStats
fsmStats(const Component &comp)
{
    FsmStats stats;
    for (const auto &m : comp.fsms()) {
        ++stats.machines;
        stats.states += static_cast<int>(m->states().size());
        stats.codes += m->totalCodes();
        stats.transitions += m->transitionCount();
        stats.counterStates += m->counterStates();
        if (!m->registerCell().empty())
            ++stats.registers;
        stats.helperRegisters +=
            static_cast<int>(m->helperRegisters().size());
    }
    stats.controlRegisters = stats.registers + stats.helperRegisters;
    stats.seedRegisters = comp.fsmSeedRegisters();
    stats.loweringSeconds = comp.fsmLoweringSeconds();
    return stats;
}

} // namespace calyx
