#ifndef CALYX_IR_CONTROL_H
#define CALYX_IR_CONTROL_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ir/attributes.h"
#include "ir/port.h"

namespace calyx {

class Control;
using ControlPtr = std::unique_ptr<Control>;

/**
 * A node in the control program (paper §3.4): the software-like execution
 * schedule that orchestrates groups. Control statements have no direct
 * hardware analog; the CompileControl pass lowers them to FSMs.
 */
class Control
{
  public:
    enum class Kind { Empty, Enable, Seq, Par, If, While };

    virtual ~Control() = default;

    Kind kind() const { return kindVal; }

    /** Deep copy. */
    virtual ControlPtr clone() const = 0;

    /** Visit this node and all descendants, pre-order. */
    void walk(const std::function<void(Control &)> &fn);
    void walk(const std::function<void(const Control &)> &fn) const;

    Attributes &attrs() { return attributes; }
    const Attributes &attrs() const { return attributes; }

    /** Latency in cycles if the "static" attribute is present. */
    std::optional<int64_t> staticLatency() const
    {
        return attributes.find(Attributes::staticAttr);
    }

  protected:
    explicit Control(Kind kind) : kindVal(kind) {}

    Attributes attributes;

  private:
    Kind kindVal;
};

/** The no-op control program. */
class Empty final : public Control
{
  public:
    Empty() : Control(Kind::Empty) {}
    ControlPtr clone() const override;
};

/** Pass control to a single group (paper: "enable"). */
class Enable final : public Control
{
  public:
    explicit Enable(Symbol group) : Control(Kind::Enable), groupName(group)
    {}

    Symbol group() const { return groupName; }
    void setGroup(Symbol g) { groupName = g; }

    ControlPtr clone() const override;

  private:
    Symbol groupName;
};

/** Execute children in order. */
class Seq final : public Control
{
  public:
    Seq() : Control(Kind::Seq) {}
    explicit Seq(std::vector<ControlPtr> children)
        : Control(Kind::Seq), stmtsVal(std::move(children))
    {}

    std::vector<ControlPtr> &stmts() { return stmtsVal; }
    const std::vector<ControlPtr> &stmts() const { return stmtsVal; }
    void add(ControlPtr c) { stmtsVal.push_back(std::move(c)); }

    ControlPtr clone() const override;

  private:
    std::vector<ControlPtr> stmtsVal;
};

/** Execute children once each, in parallel. */
class Par final : public Control
{
  public:
    Par() : Control(Kind::Par) {}
    explicit Par(std::vector<ControlPtr> children)
        : Control(Kind::Par), stmtsVal(std::move(children))
    {}

    std::vector<ControlPtr> &stmts() { return stmtsVal; }
    const std::vector<ControlPtr> &stmts() const { return stmtsVal; }
    void add(ControlPtr c) { stmtsVal.push_back(std::move(c)); }

    ControlPtr clone() const override;

  private:
    std::vector<ControlPtr> stmtsVal;
};

/**
 * Conditional: run `condGroup` to compute a 1-bit value on `condPort`,
 * then execute one branch. `condGroup` may be empty when the port is
 * driven by continuous assignments.
 */
class If final : public Control
{
  public:
    If(PortRef cond_port, Symbol cond_group, ControlPtr t, ControlPtr f)
        : Control(Kind::If), condPortVal(std::move(cond_port)),
          condGroupVal(cond_group), tVal(std::move(t)), fVal(std::move(f))
    {}

    const PortRef &condPort() const { return condPortVal; }
    Symbol condGroup() const { return condGroupVal; }
    Control &trueBranch() { return *tVal; }
    const Control &trueBranch() const { return *tVal; }
    Control &falseBranch() { return *fVal; }
    const Control &falseBranch() const { return *fVal; }
    ControlPtr &trueBranchPtr() { return tVal; }
    ControlPtr &falseBranchPtr() { return fVal; }

    ControlPtr clone() const override;

  private:
    PortRef condPortVal;
    Symbol condGroupVal;
    ControlPtr tVal, fVal;
};

/**
 * Loop: run `condGroup`, read `condPort`; while high, execute the body
 * and re-evaluate.
 */
class While final : public Control
{
  public:
    While(PortRef cond_port, Symbol cond_group, ControlPtr body)
        : Control(Kind::While), condPortVal(std::move(cond_port)),
          condGroupVal(cond_group), bodyVal(std::move(body))
    {}

    const PortRef &condPort() const { return condPortVal; }
    Symbol condGroup() const { return condGroupVal; }
    Control &body() { return *bodyVal; }
    const Control &body() const { return *bodyVal; }
    ControlPtr &bodyPtr() { return bodyVal; }

    ControlPtr clone() const override;

  private:
    PortRef condPortVal;
    Symbol condGroupVal;
    ControlPtr bodyVal;
};

/** Downcast helpers (checked in debug builds). */
template <typename T>
T &
cast(Control &c)
{
    return static_cast<T &>(c);
}

template <typename T>
const T &
cast(const Control &c)
{
    return static_cast<const T &>(c);
}

/** Count every control statement in the tree (for §7.4 statistics). */
int countControlStatements(const Control &c);

} // namespace calyx

#endif // CALYX_IR_CONTROL_H
