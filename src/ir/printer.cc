#include "ir/printer.h"

#include <sstream>

namespace calyx {

namespace {

std::string
pad(int indent)
{
    return std::string(indent, ' ');
}

std::string
attrStr(const Attributes &attrs)
{
    if (attrs.empty())
        return "";
    std::string out = "<";
    bool first = true;
    for (const auto &[k, v] : attrs.all()) {
        if (!first)
            out += ", ";
        first = false;
        out += "\"" + k + "\"=" + std::to_string(v);
    }
    out += ">";
    return out;
}

void
printSignaturePorts(const std::vector<PortDef> &sig, Direction dir,
                    std::ostream &os)
{
    bool first = true;
    for (const auto &p : sig) {
        if (p.dir != dir)
            continue;
        // The go/done calling-convention ports are implicit.
        if (p.name == "go" || p.name == "done")
            continue;
        if (!first)
            os << ", ";
        first = false;
        os << p.name << ": " << p.width;
    }
}

void
printAssignment(const Assignment &a, std::ostream &os, int indent)
{
    os << pad(indent) << a.str() << "\n";
}

} // namespace

void
Printer::print(const Control &ctrl, std::ostream &os, int indent)
{
    switch (ctrl.kind()) {
      case Control::Kind::Empty:
        break;
      case Control::Kind::Enable:
        os << pad(indent) << cast<Enable>(ctrl).group() << ";\n";
        break;
      case Control::Kind::Seq: {
        os << pad(indent) << "seq" << attrStr(ctrl.attrs()) << " {\n";
        for (const auto &c : cast<Seq>(ctrl).stmts())
            print(*c, os, indent + 2);
        os << pad(indent) << "}\n";
        break;
      }
      case Control::Kind::Par: {
        os << pad(indent) << "par" << attrStr(ctrl.attrs()) << " {\n";
        for (const auto &c : cast<Par>(ctrl).stmts())
            print(*c, os, indent + 2);
        os << pad(indent) << "}\n";
        break;
      }
      case Control::Kind::If: {
        const auto &i = cast<If>(ctrl);
        os << pad(indent) << "if " << i.condPort().str();
        if (!i.condGroup().empty())
            os << " with " << i.condGroup();
        os << " {\n";
        print(i.trueBranch(), os, indent + 2);
        os << pad(indent) << "}";
        if (i.falseBranch().kind() != Control::Kind::Empty) {
            os << " else {\n";
            print(i.falseBranch(), os, indent + 2);
            os << pad(indent) << "}";
        }
        os << "\n";
        break;
      }
      case Control::Kind::While: {
        const auto &w = cast<While>(ctrl);
        os << pad(indent) << "while " << w.condPort().str();
        if (!w.condGroup().empty())
            os << " with " << w.condGroup();
        os << " {\n";
        print(w.body(), os, indent + 2);
        os << pad(indent) << "}\n";
        break;
      }
    }
}

void
Printer::print(const Component &comp, std::ostream &os)
{
    os << "component " << comp.name() << attrStr(comp.attrs()) << "(";
    printSignaturePorts(comp.signature(), Direction::Input, os);
    os << ") -> (";
    printSignaturePorts(comp.signature(), Direction::Output, os);
    os << ") {\n";

    os << "  cells {\n";
    for (const auto &cell : comp.cells()) {
        os << "    " << cell->name();
        // Only instance-level attributes are printed; prototype attributes
        // are re-derived when parsing.
        if (cell->attrs().has(Attributes::externalAttr))
            os << "<\"external\"=1>";
        os << " = " << cell->type() << "(";
        bool first = true;
        for (uint64_t p : cell->params()) {
            if (!first)
                os << ", ";
            first = false;
            os << p;
        }
        os << ");\n";
    }
    os << "  }\n";

    os << "  wires {\n";
    for (const auto &group : comp.groups()) {
        os << "    group " << group->name() << attrStr(group->attrs())
           << " {\n";
        for (const auto &a : group->assignments())
            printAssignment(a, os, 6);
        os << "    }\n";
    }
    for (const auto &a : comp.continuousAssignments())
        printAssignment(a, os, 4);
    os << "  }\n";

    os << "  control {\n";
    print(comp.control(), os, 4);
    os << "  }\n";
    os << "}\n";
}

void
Printer::printExterns(const Context &ctx, std::ostream &os)
{
    // Extern primitive declarations (paper §6.2).
    for (const auto &[name, def] : ctx.primitives().all()) {
        if (def.externFile.empty())
            continue;
        os << "extern \"" << def.externFile << "\" {\n";
        os << "  primitive " << name << attrStr(def.attrs) << "[";
        bool first = true;
        for (const auto &p : def.params) {
            if (!first)
                os << ", ";
            first = false;
            os << p;
        }
        os << "](";
        auto port_str = [&def](const PrimPortSpec &spec) {
            std::string s;
            if (spec.name == def.goPort)
                s += "@go ";
            if (spec.name == def.donePort)
                s += "@done ";
            s += spec.name + ": ";
            s += spec.widthParam.empty() ? std::to_string(spec.fixedWidth)
                                         : spec.widthParam.str();
            return s;
        };
        first = true;
        for (const auto &spec : def.ports) {
            if (spec.dir != Direction::Input)
                continue;
            if (!first)
                os << ", ";
            first = false;
            os << port_str(spec);
        }
        os << ") -> (";
        first = true;
        for (const auto &spec : def.ports) {
            if (spec.dir != Direction::Output)
                continue;
            if (!first)
                os << ", ";
            first = false;
            os << port_str(spec);
        }
        os << ");\n}\n\n";
    }
}

void
Printer::print(const Context &ctx, std::ostream &os)
{
    printExterns(ctx, os);
    for (const auto &comp : ctx.components()) {
        print(*comp, os);
        os << "\n";
    }
}

std::string
Printer::toString(const Context &ctx)
{
    std::ostringstream os;
    print(ctx, os);
    return os.str();
}

std::string
Printer::toString(const Component &comp)
{
    std::ostringstream os;
    print(comp, os);
    return os.str();
}

std::string
Printer::toString(const Control &ctrl)
{
    std::ostringstream os;
    print(ctrl, os);
    return os.str();
}

} // namespace calyx
