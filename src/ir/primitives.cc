#include "ir/primitives.h"

#include "support/error.h"

namespace calyx {

namespace {

PrimPortSpec
in(const std::string &name, const std::string &width_param)
{
    return PrimPortSpec{name, Direction::Input, 0, width_param};
}

PrimPortSpec
in1(const std::string &name)
{
    return PrimPortSpec{name, Direction::Input, 1, ""};
}

PrimPortSpec
out(const std::string &name, const std::string &width_param)
{
    return PrimPortSpec{name, Direction::Output, 0, width_param};
}

PrimPortSpec
out1(const std::string &name)
{
    return PrimPortSpec{name, Direction::Output, 1, ""};
}

PrimitiveDef
binaryComb(const std::string &name)
{
    PrimitiveDef d;
    d.name = name;
    d.params = {"WIDTH"};
    d.ports = {in("left", "WIDTH"), in("right", "WIDTH"),
               out("out", "WIDTH")};
    d.attrs.set(Attributes::shareAttr, 1);
    return d;
}

PrimitiveDef
cmpComb(const std::string &name)
{
    PrimitiveDef d;
    d.name = name;
    d.params = {"WIDTH"};
    d.ports = {in("left", "WIDTH"), in("right", "WIDTH"), out1("out")};
    d.attrs.set(Attributes::shareAttr, 1);
    return d;
}

} // namespace

PrimitiveRegistry::PrimitiveRegistry()
{
    // Constant with a parameterized value: std_const(WIDTH, VALUE).
    {
        PrimitiveDef d;
        d.name = "std_const";
        d.params = {"WIDTH", "VALUE"};
        d.ports = {out("out", "WIDTH")};
        d.attrs.set(Attributes::shareAttr, 1);
        add(d);
    }
    // Identity wire.
    {
        PrimitiveDef d;
        d.name = "std_wire";
        d.params = {"WIDTH"};
        d.ports = {in("in", "WIDTH"), out("out", "WIDTH")};
        add(d);
    }
    // Bit slicing / zero extension.
    {
        PrimitiveDef d;
        d.name = "std_slice";
        d.params = {"IN_WIDTH", "OUT_WIDTH"};
        d.ports = {in("in", "IN_WIDTH"), out("out", "OUT_WIDTH")};
        d.attrs.set(Attributes::shareAttr, 1);
        add(d);
    }
    {
        PrimitiveDef d;
        d.name = "std_pad";
        d.params = {"IN_WIDTH", "OUT_WIDTH"};
        d.ports = {in("in", "IN_WIDTH"), out("out", "OUT_WIDTH")};
        d.attrs.set(Attributes::shareAttr, 1);
        add(d);
    }
    // Unary logic.
    {
        PrimitiveDef d;
        d.name = "std_not";
        d.params = {"WIDTH"};
        d.ports = {in("in", "WIDTH"), out("out", "WIDTH")};
        d.attrs.set(Attributes::shareAttr, 1);
        add(d);
    }
    // Binary combinational operators.
    for (const char *n : {"std_and", "std_or", "std_xor", "std_add",
                          "std_sub", "std_lsh", "std_rsh"}) {
        add(binaryComb(n));
    }
    // Comparisons (1-bit result).
    for (const char *n : {"std_eq", "std_neq", "std_lt", "std_gt", "std_le",
                          "std_ge"}) {
        add(cmpComb(n));
    }
    // Register: 1-cycle write, registered done pulse.
    {
        PrimitiveDef d;
        d.name = "std_reg";
        d.params = {"WIDTH"};
        d.ports = {in("in", "WIDTH"), in1("write_en"), out("out", "WIDTH"),
                   out1("done")};
        d.attrs.set(Attributes::statefulAttr, 1);
        d.attrs.set(Attributes::staticAttr, regLatency);
        d.goPort = "write_en";
        d.donePort = "done";
        add(d);
    }
    // One- and two-dimensional memories with combinational reads.
    // Memories are dual-ported like FPGA block RAM: port 0 reads and
    // writes, port 1 (suffix _1) is a second combinational read port so
    // two parallel lanes can share one read-only memory.
    {
        PrimitiveDef d;
        d.name = "std_mem_d1";
        d.params = {"WIDTH", "SIZE", "IDX_SIZE"};
        d.ports = {in("addr0", "IDX_SIZE"), in("write_data", "WIDTH"),
                   in1("write_en"), out("read_data", "WIDTH"),
                   out1("done"), in("addr0_1", "IDX_SIZE"),
                   out("read_data_1", "WIDTH")};
        d.attrs.set(Attributes::statefulAttr, 1);
        d.attrs.set(Attributes::staticAttr, memLatency);
        d.goPort = "write_en";
        d.donePort = "done";
        d.isMemory = true;
        add(d);
    }
    {
        PrimitiveDef d;
        d.name = "std_mem_d2";
        d.params = {"WIDTH", "D0_SIZE", "D1_SIZE", "D0_IDX_SIZE",
                    "D1_IDX_SIZE"};
        d.ports = {in("addr0", "D0_IDX_SIZE"), in("addr1", "D1_IDX_SIZE"),
                   in("write_data", "WIDTH"), in1("write_en"),
                   out("read_data", "WIDTH"), out1("done"),
                   in("addr0_1", "D0_IDX_SIZE"),
                   in("addr1_1", "D1_IDX_SIZE"),
                   out("read_data_1", "WIDTH")};
        d.attrs.set(Attributes::statefulAttr, 1);
        d.attrs.set(Attributes::staticAttr, memLatency);
        d.goPort = "write_en";
        d.donePort = "done";
        d.isMemory = true;
        add(d);
    }
    // Pipelined multiplier (paper §6.2: multiplies take four cycles).
    {
        PrimitiveDef d;
        d.name = "std_mult_pipe";
        d.params = {"WIDTH"};
        d.ports = {in("left", "WIDTH"), in("right", "WIDTH"), in1("go"),
                   out("out", "WIDTH"), out1("done")};
        d.attrs.set(Attributes::statefulAttr, 1);
        d.attrs.set(Attributes::staticAttr, multLatency);
        d.goPort = "go";
        d.donePort = "done";
        add(d);
    }
    // Pipelined divider.
    {
        PrimitiveDef d;
        d.name = "std_div_pipe";
        d.params = {"WIDTH"};
        d.ports = {in("left", "WIDTH"), in("right", "WIDTH"), in1("go"),
                   out("out_quotient", "WIDTH"),
                   out("out_remainder", "WIDTH"), out1("done")};
        d.attrs.set(Attributes::statefulAttr, 1);
        d.attrs.set(Attributes::staticAttr, divLatency);
        d.goPort = "go";
        d.donePort = "done";
        add(d);
    }
    // Integer square root with data-dependent latency: deliberately has
    // no "static" attribute (paper §6.2, black-box sqrt).
    {
        PrimitiveDef d;
        d.name = "std_sqrt";
        d.params = {"WIDTH"};
        d.ports = {in("in", "WIDTH"), in1("go"), out("out", "WIDTH"),
                   out1("done")};
        d.attrs.set(Attributes::statefulAttr, 1);
        d.goPort = "go";
        d.donePort = "done";
        add(d);
    }
}

bool
PrimitiveRegistry::has(Symbol name) const
{
    return defs.count(name) > 0;
}

const PrimitiveDef &
PrimitiveRegistry::get(Symbol name) const
{
    auto it = defs.find(name);
    if (it == defs.end())
        fatal("unknown primitive: ", name);
    return it->second;
}

void
PrimitiveRegistry::add(PrimitiveDef def)
{
    defs[def.name] = std::move(def);
}

} // namespace calyx
