#ifndef CALYX_IR_PRIMITIVES_H
#define CALYX_IR_PRIMITIVES_H

#include <map>
#include <string>
#include <vector>

#include "ir/attributes.h"
#include "ir/port.h"

namespace calyx {

/**
 * Port of a primitive prototype. Widths are either fixed or given by one
 * of the primitive's parameters (e.g. `out: WIDTH`).
 */
struct PrimPortSpec
{
    Symbol name;
    Direction dir = Direction::Input;
    Width fixedWidth = 0; ///< Used when widthParam is empty.
    Symbol widthParam;    ///< Parameter naming the width, if any.
};

/**
 * Prototype of a primitive component (paper §3.2's `std_*` library plus
 * §6.2's `extern` black-box RTL components).
 */
struct PrimitiveDef
{
    Symbol name;
    std::vector<Symbol> params;
    std::vector<PrimPortSpec> ports;
    Attributes attrs;

    /**
     * Interface ports implementing the go/done calling convention
     * (paper §4.1). For std_reg the write enable acts as `go`.
     * Empty when the primitive is purely combinational.
     */
    Symbol goPort;
    Symbol donePort;

    bool isMemory = false;  ///< Simulator exposes contents for poking.

    /** File providing the implementation for `extern` primitives. */
    std::string externFile;

    bool combinational() const { return donePort.empty(); }
    bool shareable() const { return attrs.has(Attributes::shareAttr); }
    bool stateful() const { return attrs.has(Attributes::statefulAttr); }
};

/**
 * Registry of primitive prototypes. Starts with the standard library;
 * frontends may register extern definitions (paper §6.2).
 */
class PrimitiveRegistry
{
  public:
    /** Registry pre-populated with the std_* library. */
    PrimitiveRegistry();

    bool has(Symbol name) const;
    const PrimitiveDef &get(Symbol name) const;

    /** Register an extern or frontend-specific primitive. */
    void add(PrimitiveDef def);

    const std::map<Symbol, PrimitiveDef> &all() const { return defs; }

  private:
    std::map<Symbol, PrimitiveDef> defs;
};

/** Fixed latencies of the sequential standard primitives (in cycles). */
constexpr int64_t regLatency = 1;
constexpr int64_t memLatency = 1;
constexpr int64_t multLatency = 4;
constexpr int64_t divLatency = 8;

} // namespace calyx

#endif // CALYX_IR_PRIMITIVES_H
