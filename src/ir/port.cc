#include "ir/port.h"

#include <tuple>

#include "support/error.h"

namespace calyx {

bool
PortRef::operator<(const PortRef &other) const
{
    return std::tie(kind, parent, port, value, width) <
           std::tie(other.kind, other.parent, other.port, other.value,
                    other.width);
}

std::string
PortRef::str() const
{
    switch (kind) {
      case Kind::This:
        return port.str();
      case Kind::Cell:
        return parent + "." + port;
      case Kind::Hole:
        return parent + "[" + port + "]";
      case Kind::Const:
        return std::to_string(width) + "'d" + std::to_string(value);
    }
    panic("bad PortRef kind");
}

size_t
PortRefHash::operator()(const PortRef &p) const noexcept
{
    uint64_t h = static_cast<uint64_t>(p.kind);
    h = h * 0x9e3779b97f4a7c15ull + p.parent.id();
    h = h * 0x9e3779b97f4a7c15ull + p.port.id();
    h = h * 0x9e3779b97f4a7c15ull + p.value;
    h = h * 0x9e3779b97f4a7c15ull + p.width;
    return static_cast<size_t>(h);
}

PortRef
cellPort(Symbol cell, Symbol port)
{
    PortRef p;
    p.kind = PortRef::Kind::Cell;
    p.parent = cell;
    p.port = port;
    return p;
}

PortRef
thisPort(Symbol port)
{
    PortRef p;
    p.kind = PortRef::Kind::This;
    p.port = port;
    return p;
}

PortRef
holePort(Symbol group, Symbol hole)
{
    PortRef p;
    p.kind = PortRef::Kind::Hole;
    p.parent = group;
    p.port = hole;
    return p;
}

PortRef
constant(uint64_t value, Width width)
{
    if (width == 0 || width > 64)
        fatal("constant width must be in [1, 64], got ", width);
    if (value != truncate(value, width))
        fatal("constant ", value, " does not fit in ", width, " bits");
    PortRef p;
    p.kind = PortRef::Kind::Const;
    p.value = value;
    p.width = width;
    return p;
}

} // namespace calyx
