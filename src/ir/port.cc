#include "ir/port.h"

#include <tuple>

#include "support/error.h"

namespace calyx {

bool
PortRef::operator<(const PortRef &other) const
{
    return std::tie(kind, parent, port, value, width) <
           std::tie(other.kind, other.parent, other.port, other.value,
                    other.width);
}

std::string
PortRef::str() const
{
    switch (kind) {
      case Kind::This:
        return port;
      case Kind::Cell:
        return parent + "." + port;
      case Kind::Hole:
        return parent + "[" + port + "]";
      case Kind::Const:
        return std::to_string(width) + "'d" + std::to_string(value);
    }
    panic("bad PortRef kind");
}

PortRef
cellPort(const std::string &cell, const std::string &port)
{
    PortRef p;
    p.kind = PortRef::Kind::Cell;
    p.parent = cell;
    p.port = port;
    return p;
}

PortRef
thisPort(const std::string &port)
{
    PortRef p;
    p.kind = PortRef::Kind::This;
    p.port = port;
    return p;
}

PortRef
holePort(const std::string &group, const std::string &hole)
{
    PortRef p;
    p.kind = PortRef::Kind::Hole;
    p.parent = group;
    p.port = hole;
    return p;
}

PortRef
constant(uint64_t value, Width width)
{
    if (width == 0 || width > 64)
        fatal("constant width must be in [1, 64], got ", width);
    if (value != truncate(value, width))
        fatal("constant ", value, " does not fit in ", width, " bits");
    PortRef p;
    p.kind = PortRef::Kind::Const;
    p.value = value;
    p.width = width;
    return p;
}

} // namespace calyx
