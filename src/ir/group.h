#ifndef CALYX_IR_GROUP_H
#define CALYX_IR_GROUP_H

#include <functional>
#include <string>
#include <vector>

#include "ir/attributes.h"
#include "ir/guard.h"
#include "ir/port.h"

namespace calyx {

/**
 * A guarded, non-blocking assignment `dst = guard ? src` (paper §3.2).
 * `src` is a port or constant; all computation happens inside cells.
 */
struct Assignment
{
    PortRef dst;
    PortRef src;
    GuardPtr guard = Guard::trueGuard();

    Assignment() = default;
    Assignment(PortRef d, PortRef s, GuardPtr g = Guard::trueGuard())
        : dst(std::move(d)), src(std::move(s)), guard(std::move(g))
    {}

    /** Apply `fn` to every port read by this assignment (src + guard). */
    void reads(const std::function<void(const PortRef &)> &fn) const;

    /** Textual form `dst = guard ? src;`. */
    std::string str() const;
};

/**
 * A group: a named set of assignments encapsulating one action
 * (paper §3.3). Groups expose `go`/`done` interface holes; writes to
 * `name[done]` signal completion.
 */
class Group
{
  public:
    explicit Group(std::string name) : nameVal(std::move(name)) {}

    const std::string &name() const { return nameVal; }

    std::vector<Assignment> &assignments() { return assigns; }
    const std::vector<Assignment> &assignments() const { return assigns; }

    /** Append an assignment. */
    void add(Assignment a) { assigns.push_back(std::move(a)); }

    /** Shorthand: add `dst = src`. */
    void add(const PortRef &dst, const PortRef &src)
    {
        assigns.emplace_back(dst, src);
    }

    /** Shorthand: add `dst = guard ? src`. */
    void add(const PortRef &dst, const PortRef &src, GuardPtr guard)
    {
        assigns.emplace_back(dst, src, std::move(guard));
    }

    /** The group's own `go` hole. */
    PortRef goHole() const { return holePort(nameVal, "go"); }
    /** The group's own `done` hole. */
    PortRef doneHole() const { return holePort(nameVal, "done"); }

    /** Whether any assignment writes this group's done hole. */
    bool hasDoneWrite() const;

    /** Latency in cycles if the "static" attribute is present. */
    std::optional<int64_t> staticLatency() const
    {
        return attributes.find(Attributes::staticAttr);
    }

    Attributes &attrs() { return attributes; }
    const Attributes &attrs() const { return attributes; }

  private:
    std::string nameVal;
    std::vector<Assignment> assigns;
    Attributes attributes;
};

} // namespace calyx

#endif // CALYX_IR_GROUP_H
