#ifndef CALYX_IR_GROUP_H
#define CALYX_IR_GROUP_H

#include <functional>
#include <string>
#include <vector>

#include "ir/attributes.h"
#include "ir/guard.h"
#include "ir/port.h"

namespace calyx {

class Component;

/**
 * A guarded, non-blocking assignment `dst = guard ? src` (paper §3.2).
 * `src` is a port or constant; all computation happens inside cells.
 */
struct Assignment
{
    PortRef dst;
    PortRef src;
    GuardPtr guard = Guard::trueGuard();

    Assignment() = default;
    Assignment(PortRef d, PortRef s, GuardPtr g = Guard::trueGuard())
        : dst(std::move(d)), src(std::move(s)), guard(std::move(g))
    {}

    /** Apply `fn` to every port read by this assignment (src + guard). */
    void reads(const std::function<void(const PortRef &)> &fn) const;

    /** Textual form `dst = guard ? src;`. */
    std::string str() const;
};

/**
 * A group: a named set of assignments encapsulating one action
 * (paper §3.3). Groups expose `go`/`done` interface holes; writes to
 * `name[done]` signal completion.
 *
 * Groups created through Component::addGroup know their owner: adding
 * assignments through add() keeps the owner's DefUse index current,
 * while grabbing the mutable assignment vector conservatively
 * invalidates it (see docs/ir.md, "DefUse maintenance contract").
 */
class Group
{
  public:
    explicit Group(Symbol name) : nameVal(name) {}

    Symbol name() const { return nameVal; }

    /** Dense index of this group within its component. */
    uint32_t id() const { return idVal; }

    /**
     * Mutable access to the assignment vector. The IR cannot see what
     * the caller does with it, so the owning component's DefUse index
     * (if materialized) is invalidated.
     */
    std::vector<Assignment> &
    assignments()
    {
        touch();
        return assigns;
    }
    const std::vector<Assignment> &assignments() const { return assigns; }

    /** Append an assignment (DefUse-maintaining). */
    void add(Assignment a);

    /** Shorthand: add `dst = src`. */
    void
    add(const PortRef &dst, const PortRef &src)
    {
        add(Assignment(dst, src));
    }

    /** Shorthand: add `dst = guard ? src`. */
    void
    add(const PortRef &dst, const PortRef &src, GuardPtr guard)
    {
        add(Assignment(dst, src, std::move(guard)));
    }

    /** The group's own `go` hole. */
    PortRef goHole() const;
    /** The group's own `done` hole. */
    PortRef doneHole() const;

    /** Whether any assignment writes this group's done hole. */
    bool hasDoneWrite() const;

    /** Latency in cycles if the "static" attribute is present. */
    std::optional<int64_t> staticLatency() const
    {
        return attributes.find(Attributes::staticAttr);
    }

    Attributes &attrs() { return attributes; }
    const Attributes &attrs() const { return attributes; }

  private:
    friend class Component; // sets owner/idVal, renames

    /** Invalidate the owner's DefUse index (mutation escape hatch). */
    void touch();

    Symbol nameVal;
    uint32_t idVal = 0;
    Component *owner = nullptr;
    std::vector<Assignment> assigns;
    Attributes attributes;
};

/** The interned `go` / `done` hole names (shared across the IR). */
Symbol goSymbol();
Symbol doneSymbol();

} // namespace calyx

#endif // CALYX_IR_GROUP_H
