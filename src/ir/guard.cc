#include "ir/guard.h"

#include "support/error.h"

namespace calyx {

const PortRef &
Guard::port() const
{
    if (kindVal != Kind::Port)
        panic("Guard::port on non-port guard");
    return portVal;
}

Guard::CmpOp
Guard::cmpOp() const
{
    if (kindVal != Kind::Cmp)
        panic("Guard::cmpOp on non-cmp guard");
    return op;
}

const PortRef &
Guard::lhs() const
{
    if (kindVal != Kind::Cmp)
        panic("Guard::lhs on non-cmp guard");
    return lhsVal;
}

const PortRef &
Guard::rhs() const
{
    if (kindVal != Kind::Cmp)
        panic("Guard::rhs on non-cmp guard");
    return rhsVal;
}

const GuardPtr &
Guard::left() const
{
    return leftVal;
}

const GuardPtr &
Guard::right() const
{
    return rightVal;
}

GuardPtr
Guard::trueGuard()
{
    static GuardPtr instance = [] {
        auto g = std::shared_ptr<Guard>(new Guard());
        g->kindVal = Kind::True;
        return GuardPtr(g);
    }();
    return instance;
}

GuardPtr
Guard::fromPort(const PortRef &p)
{
    auto g = std::shared_ptr<Guard>(new Guard());
    g->kindVal = Kind::Port;
    g->portVal = p;
    return g;
}

GuardPtr
Guard::negate(GuardPtr g)
{
    if (g->kindVal == Kind::Not)
        return g->leftVal;
    auto n = std::shared_ptr<Guard>(new Guard());
    n->kindVal = Kind::Not;
    n->leftVal = std::move(g);
    return n;
}

GuardPtr
Guard::conj(GuardPtr a, GuardPtr b)
{
    if (a->isTrue())
        return b;
    if (b->isTrue())
        return a;
    auto n = std::shared_ptr<Guard>(new Guard());
    n->kindVal = Kind::And;
    n->leftVal = std::move(a);
    n->rightVal = std::move(b);
    return n;
}

GuardPtr
Guard::disj(GuardPtr a, GuardPtr b)
{
    if (a->isTrue() || b->isTrue())
        return trueGuard();
    auto n = std::shared_ptr<Guard>(new Guard());
    n->kindVal = Kind::Or;
    n->leftVal = std::move(a);
    n->rightVal = std::move(b);
    return n;
}

GuardPtr
Guard::cmp(CmpOp op, const PortRef &l, const PortRef &r)
{
    auto n = std::shared_ptr<Guard>(new Guard());
    n->kindVal = Kind::Cmp;
    n->op = op;
    n->lhsVal = l;
    n->rhsVal = r;
    return n;
}

bool
Guard::equal(const GuardPtr &a, const GuardPtr &b)
{
    if (a == b)
        return true;
    if (a->kindVal != b->kindVal)
        return false;
    switch (a->kindVal) {
      case Kind::True:
        return true;
      case Kind::Port:
        return a->portVal == b->portVal;
      case Kind::Cmp:
        return a->op == b->op && a->lhsVal == b->lhsVal &&
               a->rhsVal == b->rhsVal;
      case Kind::Not:
        return equal(a->leftVal, b->leftVal);
      case Kind::And:
      case Kind::Or:
        return equal(a->leftVal, b->leftVal) &&
               equal(a->rightVal, b->rightVal);
    }
    panic("bad guard kind");
}

void
Guard::ports(const std::function<void(const PortRef &)> &fn) const
{
    switch (kindVal) {
      case Kind::True:
        return;
      case Kind::Port:
        fn(portVal);
        return;
      case Kind::Cmp:
        if (!lhsVal.isConst())
            fn(lhsVal);
        if (!rhsVal.isConst())
            fn(rhsVal);
        return;
      case Kind::Not:
        leftVal->ports(fn);
        return;
      case Kind::And:
      case Kind::Or:
        leftVal->ports(fn);
        rightVal->ports(fn);
        return;
    }
}

GuardPtr
Guard::rewritePorts(const GuardPtr &g,
                    const std::function<PortRef(const PortRef &)> &fn)
{
    switch (g->kindVal) {
      case Kind::True:
        return g;
      case Kind::Port: {
        PortRef np = fn(g->portVal);
        if (np == g->portVal)
            return g;
        return fromPort(np);
      }
      case Kind::Cmp: {
        PortRef nl = g->lhsVal.isConst() ? g->lhsVal : fn(g->lhsVal);
        PortRef nr = g->rhsVal.isConst() ? g->rhsVal : fn(g->rhsVal);
        if (nl == g->lhsVal && nr == g->rhsVal)
            return g;
        return cmp(g->op, nl, nr);
      }
      case Kind::Not: {
        GuardPtr nl = rewritePorts(g->leftVal, fn);
        if (nl == g->leftVal)
            return g;
        return negate(nl);
      }
      case Kind::And:
      case Kind::Or: {
        GuardPtr nl = rewritePorts(g->leftVal, fn);
        GuardPtr nr = rewritePorts(g->rightVal, fn);
        if (nl == g->leftVal && nr == g->rightVal)
            return g;
        return g->kindVal == Kind::And ? conj(nl, nr) : disj(nl, nr);
      }
    }
    panic("bad guard kind");
}

GuardPtr
Guard::substPort(const GuardPtr &g, const PortRef &p, const GuardPtr &value)
{
    switch (g->kindVal) {
      case Kind::True:
        return g;
      case Kind::Port:
        return g->portVal == p ? value : g;
      case Kind::Cmp:
        if (g->lhsVal == p || g->rhsVal == p)
            fatal("cannot inline hole ", p.str(),
                  " used inside a comparison");
        return g;
      case Kind::Not: {
        GuardPtr nl = substPort(g->leftVal, p, value);
        if (nl == g->leftVal)
            return g;
        return negate(nl);
      }
      case Kind::And:
      case Kind::Or: {
        GuardPtr nl = substPort(g->leftVal, p, value);
        GuardPtr nr = substPort(g->rightVal, p, value);
        if (nl == g->leftVal && nr == g->rightVal)
            return g;
        return g->kindVal == Kind::And ? conj(nl, nr) : disj(nl, nr);
      }
    }
    panic("bad guard kind");
}

int
Guard::size() const
{
    switch (kindVal) {
      case Kind::True:
        return 0;
      case Kind::Port:
      case Kind::Cmp:
        return 1;
      case Kind::Not:
        return 1 + leftVal->size();
      case Kind::And:
      case Kind::Or:
        return 1 + leftVal->size() + rightVal->size();
    }
    panic("bad guard kind");
}

std::string
Guard::cmpOpStr(CmpOp op)
{
    switch (op) {
      case CmpOp::Eq:
        return "==";
      case CmpOp::Neq:
        return "!=";
      case CmpOp::Lt:
        return "<";
      case CmpOp::Gt:
        return ">";
      case CmpOp::Leq:
        return "<=";
      case CmpOp::Geq:
        return ">=";
    }
    panic("bad cmp op");
}

namespace {

// Precedence: Or = 1, And = 2, Cmp = 3, Not = 4, leaves = 5.
int
precedence(Guard::Kind k)
{
    switch (k) {
      case Guard::Kind::Or:
        return 1;
      case Guard::Kind::And:
        return 2;
      case Guard::Kind::Cmp:
        return 3;
      case Guard::Kind::Not:
        return 4;
      default:
        return 5;
    }
}

void
render(const Guard &g, int parent_prec, std::string &out)
{
    int prec = precedence(g.kind());
    bool parens = prec < parent_prec;
    if (parens)
        out += "(";
    switch (g.kind()) {
      case Guard::Kind::True:
        out += "1'd1";
        break;
      case Guard::Kind::Port:
        out += g.port().str();
        break;
      case Guard::Kind::Cmp:
        out += g.lhs().str() + " " + Guard::cmpOpStr(g.cmpOp()) + " " +
               g.rhs().str();
        break;
      case Guard::Kind::Not:
        out += "!";
        render(*g.left(), 4, out);
        break;
      // The right operand renders one level tighter so a right-nested
      // same-operator tree keeps its parentheses: the parser
      // left-associates, and printing `a & (b & c)` flat would reparse
      // as `(a & b) & c` — semantically equal but a different tree,
      // which downstream printers that expose tree shape (the Verilog
      // backend's full parenthesization) would render differently.
      // Print -> parse must preserve shape for the compile cache's
      // byte-identity guarantee (src/cache/).
      case Guard::Kind::And:
        render(*g.left(), 2, out);
        out += " & ";
        render(*g.right(), 3, out);
        break;
      case Guard::Kind::Or:
        render(*g.left(), 1, out);
        out += " | ";
        render(*g.right(), 2, out);
        break;
    }
    if (parens)
        out += ")";
}

} // namespace

std::string
Guard::str() const
{
    std::string out;
    render(*this, 0, out);
    return out;
}

} // namespace calyx
