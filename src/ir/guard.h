#ifndef CALYX_IR_GUARD_H
#define CALYX_IR_GUARD_H

#include <functional>
#include <memory>
#include <string>

#include "ir/port.h"

namespace calyx {

class Guard;

/** Guards are immutable and shared; passes combine them without copying. */
using GuardPtr = std::shared_ptr<const Guard>;

/**
 * A guard expression controlling when an assignment is active (paper §3.2).
 * Guards are boolean trees whose leaves are 1-bit ports or comparisons
 * between same-width operands (ports or constants).
 */
class Guard
{
  public:
    enum class Kind { True, Port, Not, And, Or, Cmp };
    enum class CmpOp { Eq, Neq, Lt, Gt, Leq, Geq };

    Kind kind() const { return kindVal; }

    /** Leaf port (Kind::Port only). */
    const PortRef &port() const;
    /** Comparison pieces (Kind::Cmp only). */
    CmpOp cmpOp() const;
    const PortRef &lhs() const;
    const PortRef &rhs() const;
    /** Children (Not uses left only). */
    const GuardPtr &left() const;
    const GuardPtr &right() const;

    /** The always-true guard (default for unguarded assignments). */
    static GuardPtr trueGuard();
    /** 1-bit port leaf. */
    static GuardPtr fromPort(const PortRef &p);
    /** Logical negation; folds constants and double negation. */
    static GuardPtr negate(GuardPtr g);
    /** Conjunction; folds True operands. */
    static GuardPtr conj(GuardPtr a, GuardPtr b);
    /** Disjunction; folds True operands to True. */
    static GuardPtr disj(GuardPtr a, GuardPtr b);
    /** Comparison between two operands. */
    static GuardPtr cmp(CmpOp op, const PortRef &l, const PortRef &r);

    bool isTrue() const { return kindVal == Kind::True; }

    /** Structural equality. */
    static bool equal(const GuardPtr &a, const GuardPtr &b);

    /** Apply `fn` to every port reference in the tree (reads). */
    void ports(const std::function<void(const PortRef &)> &fn) const;

    /**
     * Return a guard with every port satisfying `pred` rewritten by `fn`.
     * Used by sharing passes (cell renaming) and hole inlining.
     */
    static GuardPtr
    rewritePorts(const GuardPtr &g,
                 const std::function<PortRef(const PortRef &)> &fn);

    /**
     * Replace occurrences of 1-bit port `p` (as a leaf) with guard `value`.
     * Used by RemoveGroups to inline holes.
     */
    static GuardPtr substPort(const GuardPtr &g, const PortRef &p,
                              const GuardPtr &value);

    /** Number of nodes in this guard tree (for area estimation). */
    int size() const;

    /** Render with minimal parentheses, e.g. `fsm.out == 2'd1 & !p.out`. */
    std::string str() const;

    static std::string cmpOpStr(CmpOp op);

  private:
    Guard() = default;

    Kind kindVal = Kind::True;
    PortRef portVal;       // Port leaf
    CmpOp op = CmpOp::Eq;  // Cmp
    PortRef lhsVal, rhsVal;
    GuardPtr leftVal, rightVal;
};

} // namespace calyx

#endif // CALYX_IR_GUARD_H
