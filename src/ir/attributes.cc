#include "ir/attributes.h"

#include "support/error.h"

namespace calyx {

// Interning goes through the function-local table singleton, so these
// dynamic initializers are safe in any TU order.
const Symbol Attributes::staticAttr{"static"};
const Symbol Attributes::shareAttr{"share"};
const Symbol Attributes::externalAttr{"external"};
const Symbol Attributes::statefulAttr{"stateful"};

// Queries scan linearly: attribute maps hold a handful of entries, and
// Symbol equality is an id compare, so this beats tree probes whose
// every step would compare interned spellings.

bool
Attributes::has(Symbol name) const
{
    return find(name).has_value();
}

int64_t
Attributes::get(Symbol name) const
{
    auto v = find(name);
    if (!v)
        fatal("missing attribute: ", name);
    return *v;
}

std::optional<int64_t>
Attributes::find(Symbol name) const
{
    for (const auto &[key, value] : attrs) {
        if (key == name)
            return value;
    }
    return std::nullopt;
}

void
Attributes::set(Symbol name, int64_t value)
{
    attrs[name] = value;
}

void
Attributes::erase(Symbol name)
{
    attrs.erase(name);
}

} // namespace calyx
