#include "ir/attributes.h"

#include "support/error.h"

namespace calyx {

bool
Attributes::has(const std::string &name) const
{
    return attrs.count(name) > 0;
}

int64_t
Attributes::get(const std::string &name) const
{
    auto it = attrs.find(name);
    if (it == attrs.end())
        fatal("missing attribute: ", name);
    return it->second;
}

std::optional<int64_t>
Attributes::find(const std::string &name) const
{
    auto it = attrs.find(name);
    if (it == attrs.end())
        return std::nullopt;
    return it->second;
}

void
Attributes::set(const std::string &name, int64_t value)
{
    attrs[name] = value;
}

void
Attributes::erase(const std::string &name)
{
    attrs.erase(name);
}

} // namespace calyx
