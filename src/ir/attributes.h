#ifndef CALYX_IR_ATTRIBUTES_H
#define CALYX_IR_ATTRIBUTES_H

#include <cstdint>
#include <map>
#include <optional>

#include "support/symbol.h"

namespace calyx {

/**
 * Key-value attributes attached to components, cells, groups, and control
 * statements (paper §3.5). Frontends and passes use attributes to exchange
 * information, e.g. `"static"=4` (latency in cycles) or `"share"=1`.
 *
 * Keys are interned Symbols. The backing map stays lexicographically
 * ordered so printed attribute lists keep their historical
 * (alphabetical) order — but because Symbol's operator< compares
 * spellings, queries scan the (tiny, typically <=3 entry) map linearly
 * with O(1) id compares instead of probing the tree with string
 * comparisons.
 */
class Attributes
{
  public:
    /** Whether the attribute `name` is present. */
    bool has(Symbol name) const;

    /** Value of attribute `name`; fatal() if absent. */
    int64_t get(Symbol name) const;

    /** Value of attribute `name`, or std::nullopt if absent. */
    std::optional<int64_t> find(Symbol name) const;

    /** Insert or overwrite attribute `name`. */
    void set(Symbol name, int64_t value);

    /** Remove attribute `name` if present. */
    void erase(Symbol name);

    bool empty() const { return attrs.empty(); }

    const std::map<Symbol, int64_t> &all() const { return attrs; }

    bool operator==(const Attributes &other) const = default;

    // Well-known attribute names, interned once so call sites pay no
    // per-query re-interning.
    static const Symbol staticAttr;
    static const Symbol shareAttr;
    static const Symbol externalAttr;
    static const Symbol statefulAttr;

  private:
    std::map<Symbol, int64_t> attrs;
};

} // namespace calyx

#endif // CALYX_IR_ATTRIBUTES_H
