#ifndef CALYX_IR_ATTRIBUTES_H
#define CALYX_IR_ATTRIBUTES_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace calyx {

/**
 * Key-value attributes attached to components, cells, groups, and control
 * statements (paper §3.5). Frontends and passes use attributes to exchange
 * information, e.g. `"static"=4` (latency in cycles) or `"share"=1`.
 */
class Attributes
{
  public:
    /** Whether the attribute `name` is present. */
    bool has(const std::string &name) const;

    /** Value of attribute `name`; fatal() if absent. */
    int64_t get(const std::string &name) const;

    /** Value of attribute `name`, or std::nullopt if absent. */
    std::optional<int64_t> find(const std::string &name) const;

    /** Insert or overwrite attribute `name`. */
    void set(const std::string &name, int64_t value);

    /** Remove attribute `name` if present. */
    void erase(const std::string &name);

    bool empty() const { return attrs.empty(); }

    const std::map<std::string, int64_t> &all() const { return attrs; }

    bool operator==(const Attributes &other) const = default;

    // Well-known attribute names.
    static constexpr const char *staticAttr = "static";
    static constexpr const char *shareAttr = "share";
    static constexpr const char *externalAttr = "external";
    static constexpr const char *statefulAttr = "stateful";

  private:
    std::map<std::string, int64_t> attrs;
};

} // namespace calyx

#endif // CALYX_IR_ATTRIBUTES_H
