#ifndef CALYX_IR_CONTEXT_H
#define CALYX_IR_CONTEXT_H

#include <memory>
#include <vector>

#include "ir/component.h"
#include "ir/primitives.h"
#include "support/symbol.h"

namespace calyx {

/**
 * A whole Calyx program: the primitive registry, a list of components,
 * and the entrypoint component name. Owns all IR.
 */
class Context
{
  public:
    Context() = default;

    Context(const Context &) = delete;
    Context &operator=(const Context &) = delete;
    Context(Context &&) = default;
    Context &operator=(Context &&) = default;

    PrimitiveRegistry &primitives() { return prims; }
    const PrimitiveRegistry &primitives() const { return prims; }

    /** Create a new empty component. */
    Component &addComponent(Symbol name);

    Component *findComponent(Symbol name);
    const Component *findComponent(Symbol name) const;
    Component &component(Symbol name);
    const Component &component(Symbol name) const;

    const std::vector<std::unique_ptr<Component>> &components() const
    {
        return comps;
    }

    /** Entrypoint component (default "main"). */
    Symbol entrypoint() const { return entry; }
    void setEntrypoint(Symbol name) { entry = name; }
    Component &main() { return component(entry); }
    const Component &main() const { return component(entry); }

    /**
     * Build a cell instantiating `type` (primitive or component defined in
     * this context) with positional `params`, resolving all port widths.
     * Unknown types are fatal errors with a did-you-mean suggestion.
     */
    std::unique_ptr<Cell> instantiate(Symbol name, Symbol type,
                                      const std::vector<uint64_t> &params)
        const;

    /**
     * Components in dependency order: every component appears after the
     * components it instantiates. fatal() on instantiation cycles.
     */
    std::vector<Component *> topologicalOrder();

  private:
    PrimitiveRegistry prims;
    std::vector<std::unique_ptr<Component>> comps;
    Symbol entry = Symbol("main");
};

} // namespace calyx

#endif // CALYX_IR_CONTEXT_H
