#ifndef CALYX_IR_CONTEXT_H
#define CALYX_IR_CONTEXT_H

#include <memory>
#include <string>
#include <vector>

#include "ir/component.h"
#include "ir/primitives.h"

namespace calyx {

/**
 * A whole Calyx program: the primitive registry, a list of components,
 * and the entrypoint component name. Owns all IR.
 */
class Context
{
  public:
    Context() = default;

    Context(const Context &) = delete;
    Context &operator=(const Context &) = delete;
    Context(Context &&) = default;
    Context &operator=(Context &&) = default;

    PrimitiveRegistry &primitives() { return prims; }
    const PrimitiveRegistry &primitives() const { return prims; }

    /** Create a new empty component. */
    Component &addComponent(const std::string &name);

    Component *findComponent(const std::string &name);
    const Component *findComponent(const std::string &name) const;
    Component &component(const std::string &name);
    const Component &component(const std::string &name) const;

    const std::vector<std::unique_ptr<Component>> &components() const
    {
        return comps;
    }

    /** Entrypoint component (default "main"). */
    const std::string &entrypoint() const { return entry; }
    void setEntrypoint(std::string name) { entry = std::move(name); }
    Component &main() { return component(entry); }
    const Component &main() const { return component(entry); }

    /**
     * Build a cell instantiating `type` (primitive or component defined in
     * this context) with positional `params`, resolving all port widths.
     */
    std::unique_ptr<Cell> instantiate(const std::string &name,
                                      const std::string &type,
                                      const std::vector<uint64_t> &params)
        const;

    /**
     * Components in dependency order: every component appears after the
     * components it instantiates. fatal() on instantiation cycles.
     */
    std::vector<Component *> topologicalOrder();

  private:
    PrimitiveRegistry prims;
    std::vector<std::unique_ptr<Component>> comps;
    std::string entry = "main";
};

} // namespace calyx

#endif // CALYX_IR_CONTEXT_H
