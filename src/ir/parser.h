#ifndef CALYX_IR_PARSER_H
#define CALYX_IR_PARSER_H

#include <string>

#include "ir/context.h"

namespace calyx {

/**
 * Recursive-descent parser for the textual Calyx IL emitted by Printer.
 * Accepts extern blocks, components with cells/wires/control sections,
 * guarded assignments, and the full control language.
 */
class Parser
{
  public:
    /** Parse a whole program. Throws Error with line info on bad input. */
    static Context parseProgram(const std::string &source);
};

} // namespace calyx

#endif // CALYX_IR_PARSER_H
