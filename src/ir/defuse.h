#ifndef CALYX_IR_DEFUSE_H
#define CALYX_IR_DEFUSE_H

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/group.h"
#include "support/symbol.h"

namespace calyx {

class Component;
class Control;

/**
 * Per-component def-use index: for every cell or group symbol, the
 * assignments, guards, and control nodes that reference it. This is the
 * substrate passes query instead of re-walking every assignment and
 * string-comparing names (the paper's "shared infrastructure" argument
 * applied to the compiler itself: one index, many passes).
 *
 * Lifecycle (the maintenance contract, see docs/ir.md):
 *  - `Component::defUse()` computes the index on first use and caches
 *    it on the component.
 *  - Structured mutators keep it current incrementally: Group::add and
 *    Component::addContinuous record the new sites; removeGroup drops
 *    the sites the group's death takes with it; add/remove/renameCell
 *    and addGroup touch only definitions, which live in the component's
 *    own symbol-keyed indices.
 *  - Raw access to mutable state (Group::assignments(),
 *    Component::continuousAssignments(), control() non-const,
 *    setControl/takeControl) invalidates the cache; the next defUse()
 *    call recomputes. Conservative, never wrong.
 *  - verifyDefUse() cross-checks a live index against a full recompute
 *    and is wired into the WellFormed pass, so any maintenance bug
 *    surfaces as a named verification failure rather than a silently
 *    stale analysis.
 *
 * A use records *where* (continuous block or group + assignment index,
 * or a control node) and *how* (dst/src/guard x cell-ref/hole-ref).
 */
class DefUse
{
  public:
    // Role bits: position in the assignment x reference kind.
    static constexpr uint8_t kDstCell = 1;
    static constexpr uint8_t kDstHole = 2;
    static constexpr uint8_t kSrcCell = 4;
    static constexpr uint8_t kSrcHole = 8;
    static constexpr uint8_t kGuardCell = 16;
    static constexpr uint8_t kGuardHole = 32;

    static constexpr uint8_t kAnyCell = kDstCell | kSrcCell | kGuardCell;
    static constexpr uint8_t kAnyHole = kDstHole | kSrcHole | kGuardHole;

    /** One assignment referencing the symbol. */
    struct AssignSite
    {
        Symbol group;       ///< Empty = continuous assignments.
        uint32_t index = 0; ///< Position in the owning vector.
        uint8_t roles = 0;  ///< Bitmask of the k* role constants.

        bool operator==(const AssignSite &other) const = default;
    };

    /** One control node referencing the symbol. */
    struct ControlUse
    {
        const Control *node = nullptr;
        /** True when the node names the symbol as a group (Enable,
         * cond group, hole cond port); false for cell cond ports. */
        bool asGroup = false;

        bool operator==(const ControlUse &other) const = default;
    };

    struct Uses
    {
        std::vector<AssignSite> assigns;
        std::vector<ControlUse> control;

        bool
        empty() const
        {
            return assigns.empty() && control.empty();
        }
        /** Whether any assignment role matches `mask`. */
        bool anyAssign(uint8_t mask) const;
    };

    /** Full recompute: one walk over wires and control. */
    static DefUse compute(const Component &comp);

    /** Uses of `s`, or nullptr when nothing references it. */
    const Uses *find(Symbol s) const;

    const std::unordered_map<Symbol, Uses> &entries() const
    {
        return map;
    }

    // --- Incremental maintenance (Component/Group hooks) -----------------

    /** Record the sites of `a`, just appended at `group`[`index`]. */
    void addAssignment(Symbol group, uint32_t index, const Assignment &a);

    /** Drop every site located inside `group` (the group was removed). */
    void removeGroupSites(Symbol group);

    /**
     * Order-insensitive equivalence against `other`; on mismatch
     * `why` (when non-null) receives a human-readable first difference.
     */
    bool equivalent(const DefUse &other, std::string *why = nullptr) const;

  private:
    void addControlUse(Symbol s, const Control *node, bool as_group);
    void collectControl(const Control &ctrl);

    std::unordered_map<Symbol, Uses> map;
};

/**
 * fatal() when `comp` carries a maintained DefUse index that disagrees
 * with a fresh recompute. No-op when no index is materialized.
 */
void verifyDefUse(const Component &comp);

} // namespace calyx

namespace calyx::analysis {

/**
 * Conservative register access summary for one group (paper §5.2):
 * `reads` is the set of registers the group may read, `mustWrites` the
 * set it always writes. Guarded (conditional) register writes are
 * treated as both a read and a may-write, which keeps the register live
 * across the group.
 *
 * Sets are lexicographically ordered Symbol sets, so iteration order
 * matches the historical string-keyed implementation exactly.
 */
struct RegAccess
{
    std::set<Symbol> reads;
    std::set<Symbol> mustWrites;
    /** Every register with any (conditional or not) write in the group. */
    std::set<Symbol> anyWrites;
};

/**
 * Compute register read/write sets for every group of a component.
 * Only `std_reg` cells participate; memories and other stateful cells
 * are never shared by the register-sharing pass.
 *
 * This is the batch path over the DefUse index: instead of scanning
 * every assignment of every group, it visits only the recorded use
 * sites of register cells.
 */
std::map<Symbol, RegAccess> registerAccess(const Component &comp);

/** Names of all std_reg cells in the component. */
std::set<Symbol> registerCells(const Component &comp);

/**
 * Registers that must be treated as live everywhere: referenced by
 * continuous assignments, by control condition ports, or carrying the
 * "external" attribute.
 */
std::set<Symbol> alwaysLiveRegisters(const Component &comp);

} // namespace calyx::analysis

#endif // CALYX_IR_DEFUSE_H
