#ifndef CALYX_IR_PORT_H
#define CALYX_IR_PORT_H

#include <cstdint>
#include <string>

#include "support/bits.h"
#include "support/symbol.h"

namespace calyx {

/** Direction of a component or primitive port. */
enum class Direction { Input, Output };

/** Declaration of a port in a component signature or primitive prototype. */
struct PortDef
{
    Symbol name;
    Width width = 0;
    Direction dir = Direction::Input;
};

/**
 * A reference to a port, the operand language of Calyx assignments and
 * guards. A reference names either:
 *  - This:  a port of the enclosing component (`go`, `done`, signature),
 *  - Cell:  `cell.port` for an instantiated subcomponent/primitive,
 *  - Hole:  `group[go]` / `group[done]` interface signals (paper §3.3),
 *  - Const: a literal `width'd value`.
 *
 * Names are interned Symbols, so a PortRef is four words of plain data:
 * copying allocates nothing and equality is an integer compare. This is
 * the property every pass and the simulator lean on — port references
 * are hashed and compared millions of times per compile.
 */
struct PortRef
{
    enum class Kind { This, Cell, Hole, Const };

    Kind kind = Kind::Const;
    Symbol parent;      ///< Cell or group name (Cell/Hole only).
    Symbol port;        ///< Port or hole name (empty for Const).
    uint64_t value = 0; ///< Literal value (Const only).
    Width width = 0;    ///< Literal width (Const only; 0 elsewhere).

    bool isConst() const { return kind == Kind::Const; }
    bool isHole() const { return kind == Kind::Hole; }
    bool isThis() const { return kind == Kind::This; }
    bool isCell() const { return kind == Kind::Cell; }

    /** O(1): Symbol equality is id equality. */
    bool operator==(const PortRef &other) const = default;

    /** Deterministic (lexicographic on names), matching the string IR. */
    bool operator<(const PortRef &other) const;

    /** Canonical textual form, e.g. `a0.out`, `incr[done]`, `32'd5`. */
    std::string str() const;
};

/** O(1) hash over the symbol ids, for unordered containers. */
struct PortRefHash
{
    size_t operator()(const PortRef &p) const noexcept;
};

/** Reference to `cell.port`. */
PortRef cellPort(Symbol cell, Symbol port);

/** Reference to a port of the enclosing component. */
PortRef thisPort(Symbol port);

/** Reference to a group interface hole, e.g. holePort("incr", "done"). */
PortRef holePort(Symbol group, Symbol hole);

/** Constant literal of the given width. */
PortRef constant(uint64_t value, Width width);

} // namespace calyx

#endif // CALYX_IR_PORT_H
