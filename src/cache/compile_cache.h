#ifndef CALYX_CACHE_COMPILE_CACHE_H
#define CALYX_CACHE_COMPILE_CACHE_H

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "passes/pass_manager.h"
#include "support/symbol.h"

namespace calyx {
class Context;
}

namespace calyx::cache {

/**
 * Content-addressed compile cache (docs/service.md): the compiler-side
 * analogue of the compiled-simulation module cache. A resident
 * `CompileService` answers a stream of compile requests — mutated
 * variants of the same program, the workload shape of generated
 * frontends and compile-in-the-loop tooling — from memory instead of
 * re-running the pass pipeline.
 *
 * Cache keys are derived from three ingredients and nothing else:
 *
 *   1. the component's *canonical source* (its printed text, so
 *      formatting differences between requests do not split the key),
 *   2. the *normalized pipeline spec* (aliases expanded, exclusions
 *      applied, per-pass options sorted by key), and
 *   3. the transitive digests of every component it instantiates,
 *      so editing a dependency invalidates all dependents — and only
 *      them — transitively.
 *
 * Three tiers, cheapest first: a raw-text tier (exact request bytes →
 * emitted artifact, no parse at all), a canonical artifact tier
 * (parsed + per-component digests → artifact, immune to whitespace),
 * and a per-component tier holding post-pipeline component texts, from
 * which an incremental compile rebuilds a program while re-running
 * passes only on the dependency-closed cone of changed components.
 */

/**
 * Canonical form of a pipeline-spec string: aliases expanded,
 * `-pass` exclusions applied, and each invocation's `[k=v]` options
 * sorted by key (option application is order-independent across
 * distinct keys; for duplicate keys the last wins before sorting).
 * Two spec strings requesting the same pass sequence normalize — and
 * therefore hash — identically: "all" equals its expanded list,
 * "all,-collapse-control" equals the expansion with the member
 * removed, and "p[a=1,b=2]" equals "p[b=2,a=1]". Unknown pass names
 * are fatal errors with the registry's did-you-mean suggestion.
 */
std::string normalizePipelineSpec(const std::string &spec);

/** Per-component content digests for a parsed program. */
struct ProgramDigests
{
    /**
     * (component, transitive digest) in source order. The transitive
     * digest folds the component's own printed text, the extern
     * primitive declarations, and the transitive digests of every
     * component it instantiates (sorted by name), so it changes iff
     * the component or anything in its dependency cone changes.
     */
    std::vector<std::pair<Symbol, std::string>> transitive;
    /** Whole-program digest: entrypoint + every transitive digest. */
    std::string program;
};

ProgramDigests digestProgram(const Context &ctx);

/**
 * Default on-disk tier location, resolved like the cppsim JIT cache:
 * $CALYX_COMPILE_CACHE, else $XDG_CACHE_HOME/calyx-compile, else
 * ~/.cache/calyx-compile, else /tmp/calyx-compile.
 */
std::string compileCacheDir();

/**
 * In-memory LRU over digest-keyed text values with an optional
 * on-disk tier. Entries are whole artifacts or post-pipeline
 * component texts; the key already encodes everything that determines
 * the value, so entries never need invalidation — only eviction.
 * Thread-safe (one mutex; the serve loop and tests share instances).
 */
class CompileCache
{
  public:
    struct Config
    {
        /** False disables the cache entirely (every get misses, every
         * put is dropped) — the bench's cold configuration. */
        bool enabled = true;
        size_t maxEntries = 512;
        size_t maxBytes = 256u << 20;
        /** On-disk tier directory; empty keeps the cache memory-only.
         * Entries are written atomically (temp + rename) and survive
         * the process, so a restarted service warms from disk. */
        std::string diskDir;
    };

    struct Stats
    {
        uint64_t hits = 0;     ///< In-memory tier hits.
        uint64_t diskHits = 0; ///< Disk tier hits (promoted to memory).
        uint64_t misses = 0;
        uint64_t evictions = 0;
        uint64_t entries = 0; ///< Current in-memory entries.
        uint64_t bytes = 0;   ///< Current in-memory value bytes.
    };

    CompileCache() = default;
    explicit CompileCache(Config cfg) : cfg(std::move(cfg)) {}

    std::optional<std::string> get(const std::string &key);
    void put(const std::string &key, const std::string &value);

    Stats stats() const;
    const Config &config() const { return cfg; }

  private:
    void evictOver();

    Config cfg;
    mutable std::mutex mu;
    /** Front = most recently used. */
    std::list<std::pair<std::string, std::string>> lru;
    std::unordered_map<std::string,
                       std::list<std::pair<std::string, std::string>>::
                           iterator>
        index;
    Stats st;
};

/** One compile request: source + pipeline spec + backend in. */
struct CompileRequest
{
    std::string source;
    std::string pipeline = "default";
    std::string backend = "calyx";
    /** Worker threads for per-component pass execution
     * (passes/pass_manager.h wavefront dispatch). */
    unsigned threads = 1;
    /** Run the well-formed checker between passes. */
    bool verify = false;
};

/** Emitted artifact + provenance for one request. */
struct CompileResult
{
    std::string artifact;
    /** Normalized pipeline spec actually keyed on. */
    std::string pipeline;
    uint64_t components = 0; ///< 0 on a raw-text hit (nothing parsed).
    uint64_t componentsFromCache = 0;
    bool artifactFromCache = false;
    /** The cheapest tier hit: exact request bytes, no parse. */
    bool rawTextHit = false;
    double seconds = 0;
    /** Per-pass instrumentation; empty when no pass ran. */
    std::vector<passes::PassRunInfo> passInfos;
};

/**
 * A resident compiler: CompileCache + the compile pipeline behind one
 * call. Misses re-run passes only on the dependency-closed cone of
 * changed components (cached components' post-pipeline texts are
 * spliced back in), which is sound because every core pass is
 * per-component and reads other components only along instantiation
 * edges — the exact invariant the transitive cache key asserts
 * (docs/service.md has the full contract).
 */
class CompileService
{
  public:
    struct Counters
    {
        uint64_t requests = 0;
        uint64_t rawHits = 0;      ///< Raw-text artifact hits.
        uint64_t artifactHits = 0; ///< Canonical artifact hits.
        uint64_t componentHits = 0;
        uint64_t componentMisses = 0;
    };

    /** Memory-only by default; $CALYX_COMPILE_CACHE (when set) enables
     * the disk tier at that path. */
    CompileService();
    explicit CompileService(CompileCache::Config cfg)
        : store(std::move(cfg))
    {}

    /** Compile one request. fatal()s (throws Error) on parse errors,
     * unknown passes/backends (with did-you-mean), or verify failures;
     * the cache is left consistent either way. */
    CompileResult compile(const CompileRequest &req);

    const Counters &counters() const { return counts; }
    CompileCache::Stats cacheStats() const { return store.stats(); }
    const CompileCache &cache() const { return store; }

  private:
    CompileCache store;
    Counters counts;
};

} // namespace calyx::cache

#endif // CALYX_CACHE_COMPILE_CACHE_H
