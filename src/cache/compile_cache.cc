#include "cache/compile_cache.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <set>
#include <sstream>
#include <sys/stat.h>
#include <unistd.h>
#include <unordered_set>

#include "emit/backend.h"
#include "ir/context.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "passes/pipeline_spec.h"
#include "support/error.h"
#include "support/hash.h"

namespace calyx::cache {

namespace {

bool
makeDirs(const std::string &path)
{
    std::string prefix;
    for (size_t i = 0; i <= path.size(); ++i) {
        if (i == path.size() || path[i] == '/') {
            if (!prefix.empty() && prefix != "/") {
                if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST)
                    return false;
            }
        }
        if (i < path.size())
            prefix += path[i];
    }
    return true;
}

std::optional<std::string>
readFileIfExists(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Write-to-temp + rename, same discipline as the cppsim JIT cache:
 * a concurrent reader sees either nothing or the whole entry. */
void
writeFileAtomic(const std::string &path, const std::string &text)
{
    std::string tmp = path + ".tmp" + std::to_string(::getpid());
    {
        std::ofstream out(tmp, std::ios::binary);
        if (!out)
            return; // Disk tier is best-effort; memory tier still holds it.
        out << text;
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0)
        ::remove(tmp.c_str());
}

} // namespace

std::string
normalizePipelineSpec(const std::string &spec)
{
    passes::PipelineSpec parsed = passes::parsePipelineSpec(spec);
    for (passes::PassInvocation &inv : parsed.passes) {
        // Order-independent across distinct keys; for a duplicated key
        // the last occurrence wins (matching Pass::option application
        // order), then the stable sort keeps that survivor.
        for (size_t i = 0; i < inv.options.size(); ++i) {
            for (size_t j = inv.options.size(); j-- > i + 1;) {
                if (inv.options[j].first == inv.options[i].first) {
                    inv.options[i].second = inv.options[j].second;
                    inv.options.erase(inv.options.begin() + j);
                }
            }
        }
        std::stable_sort(inv.options.begin(), inv.options.end(),
                         [](const auto &a, const auto &b) {
                             return a.first < b.first;
                         });
    }
    return parsed.str();
}

ProgramDigests
digestProgram(const Context &ctx)
{
    // The extern declarations fold into every component's own digest:
    // changing a black-box primitive's interface changes what every
    // component compiles against.
    std::ostringstream ex;
    Printer::printExterns(ctx, ex);
    const std::string externs_digest = contentDigest(ex.str());

    std::unordered_map<Symbol, std::string> own;
    for (const auto &comp : ctx.components()) {
        own[comp->name()] =
            contentDigest(externs_digest + "\n" +
                          Printer::toString(*comp));
    }

    // Transitive digests, memoized over the instantiation DAG (the
    // parser requires components to be defined before use, so the
    // relation cannot cycle).
    std::unordered_map<Symbol, std::string> trans;
    std::function<const std::string &(const Component &)> rec =
        [&](const Component &comp) -> const std::string & {
        auto it = trans.find(comp.name());
        if (it != trans.end())
            return it->second;
        std::set<Symbol> deps;
        for (const auto &cell : comp.cells()) {
            if (!cell->isPrimitive())
                deps.insert(cell->type());
        }
        std::string acc = own[comp.name()];
        for (Symbol dep : deps) {
            const Component *def = ctx.findComponent(dep);
            if (def)
                acc += "\n" + dep.str() + "=" + rec(*def);
        }
        return trans.emplace(comp.name(), contentDigest(acc))
            .first->second;
    };

    ProgramDigests d;
    std::string acc = "entry=" + ctx.entrypoint().str();
    for (const auto &comp : ctx.components()) {
        const std::string &t = rec(*comp);
        d.transitive.emplace_back(comp->name(), t);
        acc += "\n" + comp->name().str() + "=" + t;
    }
    d.program = contentDigest(acc);
    return d;
}

std::string
compileCacheDir()
{
    if (const char *dir = std::getenv("CALYX_COMPILE_CACHE"); dir && *dir)
        return dir;
    if (const char *xdg = std::getenv("XDG_CACHE_HOME"); xdg && *xdg)
        return std::string(xdg) + "/calyx-compile";
    if (const char *home = std::getenv("HOME"); home && *home)
        return std::string(home) + "/.cache/calyx-compile";
    return "/tmp/calyx-compile";
}

std::optional<std::string>
CompileCache::get(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mu);
    if (!cfg.enabled) {
        ++st.misses;
        return std::nullopt;
    }
    auto it = index.find(key);
    if (it != index.end()) {
        lru.splice(lru.begin(), lru, it->second);
        ++st.hits;
        return it->second->second;
    }
    if (!cfg.diskDir.empty()) {
        if (auto text = readFileIfExists(cfg.diskDir + "/" + key + ".txt")) {
            ++st.diskHits;
            lru.emplace_front(key, *text);
            index[key] = lru.begin();
            st.bytes += text->size();
            ++st.entries;
            evictOver();
            return text;
        }
    }
    ++st.misses;
    return std::nullopt;
}

void
CompileCache::put(const std::string &key, const std::string &value)
{
    std::lock_guard<std::mutex> lock(mu);
    if (!cfg.enabled)
        return;
    auto it = index.find(key);
    if (it != index.end()) {
        st.bytes += value.size();
        st.bytes -= it->second->second.size();
        it->second->second = value;
        lru.splice(lru.begin(), lru, it->second);
    } else {
        lru.emplace_front(key, value);
        index[key] = lru.begin();
        st.bytes += value.size();
        ++st.entries;
        evictOver();
    }
    if (!cfg.diskDir.empty() && makeDirs(cfg.diskDir))
        writeFileAtomic(cfg.diskDir + "/" + key + ".txt", value);
}

void
CompileCache::evictOver()
{
    while (!lru.empty() && (st.entries > cfg.maxEntries ||
                            st.bytes > cfg.maxBytes)) {
        auto &back = lru.back();
        st.bytes -= back.second.size();
        --st.entries;
        ++st.evictions;
        index.erase(back.first);
        lru.pop_back();
    }
}

CompileCache::Stats
CompileCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    return st;
}

namespace {

CompileCache::Config
envCacheConfig()
{
    CompileCache::Config cfg;
    if (const char *dir = std::getenv("CALYX_COMPILE_CACHE"); dir && *dir)
        cfg.diskDir = compileCacheDir();
    return cfg;
}

} // namespace

CompileService::CompileService() : store(envCacheConfig()) {}

CompileResult
CompileService::compile(const CompileRequest &req)
{
    using clock = std::chrono::steady_clock;
    auto t0 = clock::now();
    auto elapsed = [&t0] {
        return std::chrono::duration<double>(clock::now() - t0).count();
    };
    ++counts.requests;

    CompileResult res;
    res.pipeline = normalizePipelineSpec(req.pipeline);
    // Resolve the backend up front: an unknown name is a hard error
    // (with a did-you-mean suggestion) before any cache state changes.
    std::unique_ptr<emit::Backend> backend =
        emit::BackendRegistry::instance().create(req.backend);

    // Tier 1: exact request bytes -> artifact. No parse.
    const std::string raw_key = contentDigest(
        "raw\n" + req.backend + "\n" + res.pipeline + "\n" + req.source);
    if (auto hit = store.get(raw_key)) {
        ++counts.rawHits;
        res.artifact = std::move(*hit);
        res.artifactFromCache = res.rawTextHit = true;
        res.seconds = elapsed();
        return res;
    }

    // Tier 2: canonical program digest -> artifact. Catches requests
    // that differ only in formatting.
    Context ctx = Parser::parseProgram(req.source);
    ProgramDigests digests = digestProgram(ctx);
    res.components = digests.transitive.size();
    const std::string art_key =
        contentDigest("artifact\n" + req.backend + "\n" + res.pipeline +
                      "\n" + digests.program);
    if (auto hit = store.get(art_key)) {
        ++counts.artifactHits;
        res.artifact = std::move(*hit);
        res.artifactFromCache = true;
        res.componentsFromCache = res.components;
        store.put(raw_key, res.artifact);
        res.seconds = elapsed();
        return res;
    }

    // Tier 3: per-component post-pipeline texts.
    const size_t n = digests.transitive.size();
    std::vector<std::string> keys(n), texts(n);
    std::vector<bool> cached(n, false);
    for (size_t i = 0; i < n; ++i) {
        keys[i] = contentDigest("component\n" + res.pipeline + "\n" +
                                digests.transitive[i].second);
        if (auto hit = store.get(keys[i])) {
            texts[i] = std::move(*hit);
            cached[i] = true;
            ++counts.componentHits;
            ++res.componentsFromCache;
        } else {
            ++counts.componentMisses;
        }
    }

    bool any_miss = false;
    for (size_t i = 0; i < n; ++i)
        any_miss |= !cached[i];

    if (any_miss) {
        // Recompile the dependency-closed miss cone from source. The
        // cone's own dependencies ride along in source form so every
        // cross-component read a pass performs (callee signatures,
        // inferred latencies) sees exactly what a cold whole-program
        // compile would show it; unrelated components are simply
        // absent, which is indistinguishable to a per-component pass.
        std::unordered_set<Symbol> cone;
        std::function<void(const Component &)> pull =
            [&](const Component &comp) {
                if (!cone.insert(comp.name()).second)
                    return;
                for (const auto &cell : comp.cells()) {
                    if (cell->isPrimitive())
                        continue;
                    if (const Component *def =
                            ctx.findComponent(cell->type()))
                        pull(*def);
                }
            };
        for (size_t i = 0; i < n; ++i) {
            if (!cached[i])
                pull(ctx.component(digests.transitive[i].first));
        }

        std::ostringstream sub;
        Printer::printExterns(ctx, sub);
        for (const auto &comp : ctx.components()) {
            if (cone.count(comp->name())) {
                Printer::print(*comp, sub);
                sub << "\n";
            }
        }
        Context sub_ctx = Parser::parseProgram(sub.str());
        passes::RunOptions run_opts;
        run_opts.threads = req.threads;
        run_opts.verify = req.verify;
        res.passInfos =
            passes::runPipeline(sub_ctx, res.pipeline, run_opts);

        for (size_t i = 0; i < n; ++i) {
            if (cached[i])
                continue;
            texts[i] = Printer::toString(
                sub_ctx.component(digests.transitive[i].first));
            store.put(keys[i], texts[i]);
        }
    }

    // Assemble hits + fresh results in source order and emit. The
    // printer/parser round-trip is idempotent (tests/test_roundtrip.cc),
    // so this reparse changes nothing the backends can see and the
    // artifact is byte-identical to a cold serial compile.
    std::ostringstream assembled;
    Printer::printExterns(ctx, assembled);
    for (size_t i = 0; i < n; ++i)
        assembled << texts[i] << "\n";
    Context final_ctx = Parser::parseProgram(assembled.str());
    final_ctx.setEntrypoint(ctx.entrypoint());
    res.artifact = backend->emitString(final_ctx);

    store.put(art_key, res.artifact);
    store.put(raw_key, res.artifact);
    res.seconds = elapsed();
    return res;
}

} // namespace calyx::cache
