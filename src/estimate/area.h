#ifndef CALYX_ESTIMATE_AREA_H
#define CALYX_ESTIMATE_AREA_H

#include <map>
#include <string>

#include "ir/context.h"

namespace calyx::estimate {

/**
 * FPGA resource estimate. LUTs are fractional internally (a 6-input LUT
 * often packs more than one small function); round when reporting.
 */
struct Area
{
    double luts = 0.0;
    double ffs = 0.0;   ///< flip-flop bits
    double dsps = 0.0;
    int registers = 0;  ///< number of std_reg cells (paper Fig. 9b metric)

    Area &operator+=(const Area &other);
    Area operator+(const Area &other) const;
};

/**
 * Analytical area model over lowered netlists — the repository's
 * substitute for Vivado synthesis (see DESIGN.md §1). Costs:
 *
 *  - functional units: per-primitive constants (adder W LUTs, comparator
 *    W, equality/logic W/2, divider 5W, multiplier -> DSPs, ...),
 *  - steering logic: a port with k guarded drivers costs a (k-1)-deep
 *    2:1 mux tree at W/2 LUTs per stage,
 *  - guard logic: 1/2 LUT per boolean connective, W/3 per comparison
 *    against a constant, W/2 per port-port comparison,
 *  - state: W+1 FF bits per register (payload + done).
 *
 * Component instances are costed recursively.
 */
class AreaEstimator
{
  public:
    explicit AreaEstimator(const Context &ctx) : ctx(&ctx) {}

    /** Area of one component including its sub-instances. */
    Area estimate(const Component &comp);

    /** Area of the entrypoint component. */
    Area estimateProgram();

  private:
    Area cellArea(const Cell &cell);

    const Context *ctx;
    std::map<std::string, Area> cache; // per-component memoization
};

} // namespace calyx::estimate

#endif // CALYX_ESTIMATE_AREA_H
