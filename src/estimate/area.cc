#include "estimate/area.h"

#include <cmath>
#include <set>

#include "support/error.h"

namespace calyx::estimate {

Area &
Area::operator+=(const Area &other)
{
    luts += other.luts;
    ffs += other.ffs;
    dsps += other.dsps;
    registers += other.registers;
    return *this;
}

Area
Area::operator+(const Area &other) const
{
    Area out = *this;
    out += other;
    return out;
}

namespace {

/**
 * Guard costing with common-subexpression sharing: synthesis maps one
 * circuit per distinct boolean function, no matter how many guards use
 * it (the FSM state comparator feeds every assignment in its state).
 * Each structurally distinct subtree is therefore costed exactly once
 * per component.
 */
class GuardCostSet
{
  public:
    double
    cost(const GuardPtr &g, const Component &comp)
    {
        switch (g->kind()) {
          case Guard::Kind::True:
          case Guard::Kind::Port:
            return 0.0;
          default:
            break;
        }
        if (!seen.insert(g->str()).second)
            return 0.0;
        switch (g->kind()) {
          case Guard::Kind::Not:
            return 0.25 + cost(g->left(), comp);
          case Guard::Kind::And:
          case Guard::Kind::Or:
            return 0.5 + cost(g->left(), comp) + cost(g->right(), comp);
          case Guard::Kind::Cmp: {
            Width w = comp.portWidth(g->lhs());
            bool vs_const = g->lhs().isConst() || g->rhs().isConst();
            return vs_const ? w / 3.0 : w / 2.0;
          }
          default:
            panic("bad guard kind");
        }
    }

  private:
    std::set<std::string> seen;
};

} // namespace

Area
AreaEstimator::cellArea(const Cell &cell)
{
    if (!cell.isPrimitive()) {
        const Component *def = ctx->findComponent(cell.type());
        if (!def)
            fatal("area: unknown component ", cell.type());
        return estimate(*def);
    }

    const std::string &t = cell.type();
    auto w = [&cell](size_t i) {
        return static_cast<double>(cell.params()[i]);
    };
    Area a;
    if (t == "std_add" || t == "std_sub") {
        a.luts = w(0);
    } else if (t == "std_lt" || t == "std_gt" || t == "std_le" ||
               t == "std_ge") {
        a.luts = w(0);
    } else if (t == "std_eq" || t == "std_neq") {
        a.luts = w(0) / 2.0;
    } else if (t == "std_and" || t == "std_or" || t == "std_xor" ||
               t == "std_not") {
        a.luts = w(0) / 2.0;
    } else if (t == "std_lsh" || t == "std_rsh") {
        a.luts = w(0);
    } else if (t == "std_const" || t == "std_wire" || t == "std_slice" ||
               t == "std_pad") {
        a.luts = 0.0;
    } else if (t == "std_reg") {
        a.luts = 1.0;
        a.ffs = w(0) + 1.0;
        a.registers = 1;
    } else if (t == "std_mem_d1" || t == "std_mem_d2") {
        // BRAM (not counted: the paper elides BRAM), address decode only.
        a.luts = 4.0;
        a.ffs = 1.0;
    } else if (t == "std_mult_pipe") {
        a.luts = 8.0;
        a.ffs = 2.0 * w(0);
        a.dsps = std::ceil(w(0) / 18.0) * std::ceil(w(0) / 18.0);
    } else if (t == "std_div_pipe") {
        a.luts = 5.0 * w(0);
        a.ffs = 2.0 * w(0);
    } else if (t == "std_sqrt") {
        a.luts = 3.0 * w(0);
        a.ffs = 2.0 * w(0);
    } else {
        // Unknown extern: assume a moderate fixed cost.
        a.luts = 2.0 * w(0);
        a.ffs = w(0);
    }
    return a;
}

Area
AreaEstimator::estimate(const Component &comp)
{
    auto it = cache.find(comp.name());
    if (it != cache.end())
        return it->second;

    Area total;
    for (const auto &cell : comp.cells())
        total += cellArea(*cell);

    // Steering and guard logic from the (lowered or not) assignments.
    // One shared guard-cost set per component: identical guard
    // subexpressions synthesize to one circuit.
    GuardCostSet guard_costs;
    auto scan = [&](const std::vector<Assignment> &assigns) {
        std::map<PortRef, int> drivers;
        for (const auto &a : assigns) {
            drivers[a.dst]++;
            total.luts += guard_costs.cost(a.guard, comp);
        }
        for (const auto &[dst, k] : drivers) {
            if (k > 1) {
                Width w = comp.portWidth(dst);
                total.luts += (k - 1) * (w / 2.0);
            }
        }
    };
    scan(comp.continuousAssignments());
    for (const auto &g : comp.groups())
        scan(g->assignments());

    cache[comp.name()] = total;
    return total;
}

Area
AreaEstimator::estimateProgram()
{
    return estimate(ctx->main());
}

} // namespace calyx::estimate
