#include "frontends/systolic/systolic.h"

#include "ir/builder.h"
#include "support/error.h"

namespace calyx::systolic {

namespace {

std::string
peName(int i, int j)
{
    return "pe_" + std::to_string(i) + "_" + std::to_string(j);
}

std::string
aRegName(int i, int j)
{
    return "a_" + std::to_string(i) + "_" + std::to_string(j);
}

std::string
bRegName(int i, int j)
{
    return "b_" + std::to_string(i) + "_" + std::to_string(j);
}

} // namespace

std::string
leftMemName(int row)
{
    return "l" + std::to_string(row);
}

std::string
topMemName(int col)
{
    return "t" + std::to_string(col);
}

const Component &
buildMacPe(Context &ctx, Width width)
{
    if (const Component *existing = ctx.findComponent("mac_pe"))
        return *existing;

    auto b = ComponentBuilder::create(ctx, "mac_pe");
    Component &pe = b.component();
    pe.addInput("top", width);
    pe.addInput("left", width);
    pe.addOutput("out", width);

    b.cell("mul", "std_mult_pipe", {width});
    b.reg("acc", width);
    b.cell("add", "std_add", {width});

    // Multiply the two inputs; the product persists on mul.out.
    Group &do_mul = b.group("do_mul");
    do_mul.add(cellPort("mul", "left"), thisPort("top"));
    do_mul.add(cellPort("mul", "right"), thisPort("left"));
    do_mul.add(cellPort("mul", "go"), constant(1, 1));
    do_mul.add(do_mul.doneHole(), cellPort("mul", "done"));

    // Accumulate the product.
    Group &do_add = b.group("do_add");
    do_add.add(cellPort("add", "left"), cellPort("acc", "out"));
    do_add.add(cellPort("add", "right"), cellPort("mul", "out"));
    do_add.add(cellPort("acc", "in"), cellPort("add", "out"));
    do_add.add(cellPort("acc", "write_en"), constant(1, 1));
    do_add.add(do_add.doneHole(), cellPort("acc", "done"));

    pe.continuousAssignments().emplace_back(thisPort("out"),
                                            cellPort("acc", "out"));

    std::vector<ControlPtr> steps;
    steps.push_back(ComponentBuilder::enable("do_mul"));
    steps.push_back(ComponentBuilder::enable("do_add"));
    pe.setControl(ComponentBuilder::seq(std::move(steps)));
    return pe;
}

void
generate(Context &ctx, const Config &cfg)
{
    if (cfg.rows < 1 || cfg.cols < 1 || cfg.inner < 1)
        fatal("systolic: dimensions must be positive");

    std::string pe_type = cfg.peComponent;
    if (pe_type.empty()) {
        buildMacPe(ctx, cfg.width);
        pe_type = "mac_pe";
    } else if (!ctx.findComponent(pe_type)) {
        fatal("systolic: unknown PE component ", pe_type);
    }

    auto b = ComponentBuilder::create(ctx, "main");
    Component &main = b.component();
    Width w = cfg.width;
    Width idx_w = bitsNeeded(static_cast<uint64_t>(cfg.inner));

    // --- Cells -------------------------------------------------------------
    // Input memories: l<i> holds row i of A, t<j> holds column j of B.
    for (int i = 0; i < cfg.rows; ++i)
        b.cell(leftMemName(i), "std_mem_d1",
               {w, static_cast<uint64_t>(cfg.inner), idx_w});
    for (int j = 0; j < cfg.cols; ++j)
        b.cell(topMemName(j), "std_mem_d1",
               {w, static_cast<uint64_t>(cfg.inner), idx_w});
    b.cell(outMemName, "std_mem_d2",
           {w, static_cast<uint64_t>(cfg.rows),
            static_cast<uint64_t>(cfg.cols),
            bitsNeeded(static_cast<uint64_t>(cfg.rows - 1)),
            bitsNeeded(static_cast<uint64_t>(cfg.cols - 1))});

    // Per-row/column feed counters.
    for (int i = 0; i < cfg.rows; ++i) {
        b.reg("lidx" + std::to_string(i), idx_w);
        b.cell("ladd" + std::to_string(i), "std_add", {idx_w});
    }
    for (int j = 0; j < cfg.cols; ++j) {
        b.reg("tidx" + std::to_string(j), idx_w);
        b.cell("tadd" + std::to_string(j), "std_add", {idx_w});
    }

    // PEs and their input registers.
    for (int i = 0; i < cfg.rows; ++i) {
        for (int j = 0; j < cfg.cols; ++j) {
            b.cell(peName(i, j), pe_type, {});
            b.reg(aRegName(i, j), w);
            b.reg(bRegName(i, j), w);
        }
    }

    // --- Groups ------------------------------------------------------------
    // Reset all feed counters in one group.
    Group &init = b.group("init_idx");
    for (int i = 0; i < cfg.rows; ++i) {
        init.add(cellPort("lidx" + std::to_string(i), "in"),
                 constant(0, idx_w));
        init.add(cellPort("lidx" + std::to_string(i), "write_en"),
                 constant(1, 1));
    }
    for (int j = 0; j < cfg.cols; ++j) {
        init.add(cellPort("tidx" + std::to_string(j), "in"),
                 constant(0, idx_w));
        init.add(cellPort("tidx" + std::to_string(j), "write_en"),
                 constant(1, 1));
    }
    init.add(init.doneHole(), cellPort("lidx0", "done"));

    // Edge feeders: move mem[idx] into the first input register and
    // advance the counter (Figure 5's l0/t0 groups).
    for (int i = 0; i < cfg.rows; ++i) {
        std::string mem = leftMemName(i);
        std::string idx = "lidx" + std::to_string(i);
        std::string add = "ladd" + std::to_string(i);
        Group &g = b.group("feed_l" + std::to_string(i));
        g.add(cellPort(mem, "addr0"), cellPort(idx, "out"));
        g.add(cellPort(aRegName(i, 0), "in"), cellPort(mem, "read_data"));
        g.add(cellPort(aRegName(i, 0), "write_en"), constant(1, 1));
        g.add(cellPort(add, "left"), cellPort(idx, "out"));
        g.add(cellPort(add, "right"), constant(1, idx_w));
        g.add(cellPort(idx, "in"), cellPort(add, "out"));
        g.add(cellPort(idx, "write_en"), constant(1, 1));
        g.add(g.doneHole(), cellPort(aRegName(i, 0), "done"));
    }
    for (int j = 0; j < cfg.cols; ++j) {
        std::string mem = topMemName(j);
        std::string idx = "tidx" + std::to_string(j);
        std::string add = "tadd" + std::to_string(j);
        Group &g = b.group("feed_t" + std::to_string(j));
        g.add(cellPort(mem, "addr0"), cellPort(idx, "out"));
        g.add(cellPort(bRegName(0, j), "in"), cellPort(mem, "read_data"));
        g.add(cellPort(bRegName(0, j), "write_en"), constant(1, 1));
        g.add(cellPort(add, "left"), cellPort(idx, "out"));
        g.add(cellPort(add, "right"), constant(1, idx_w));
        g.add(cellPort(idx, "in"), cellPort(add, "out"));
        g.add(cellPort(idx, "write_en"), constant(1, 1));
        g.add(g.doneHole(), cellPort(bRegName(0, j), "done"));
    }

    // Fabric movement: values move right (A) and down (B).
    for (int i = 0; i < cfg.rows; ++i) {
        for (int j = 1; j < cfg.cols; ++j) {
            Group &g = b.group("right_" + std::to_string(i) + "_" +
                               std::to_string(j));
            g.add(cellPort(aRegName(i, j), "in"),
                  cellPort(aRegName(i, j - 1), "out"));
            g.add(cellPort(aRegName(i, j), "write_en"), constant(1, 1));
            g.add(g.doneHole(), cellPort(aRegName(i, j), "done"));
        }
    }
    for (int i = 1; i < cfg.rows; ++i) {
        for (int j = 0; j < cfg.cols; ++j) {
            Group &g = b.group("down_" + std::to_string(i) + "_" +
                               std::to_string(j));
            g.add(cellPort(bRegName(i, j), "in"),
                  cellPort(bRegName(i - 1, j), "out"));
            g.add(cellPort(bRegName(i, j), "write_en"), constant(1, 1));
            g.add(g.doneHole(), cellPort(bRegName(i, j), "done"));
        }
    }

    // PE invocation groups.
    for (int i = 0; i < cfg.rows; ++i) {
        for (int j = 0; j < cfg.cols; ++j) {
            std::string pe = peName(i, j);
            Group &g = b.group("invoke_" + std::to_string(i) + "_" +
                               std::to_string(j));
            g.add(cellPort(pe, "top"), cellPort(bRegName(i, j), "out"));
            g.add(cellPort(pe, "left"), cellPort(aRegName(i, j), "out"));
            g.add(cellPort(pe, "go"), constant(1, 1));
            g.add(g.doneHole(), cellPort(pe, "done"));
        }
    }

    // Drain groups: copy accumulators into the output memory.
    for (int i = 0; i < cfg.rows; ++i) {
        for (int j = 0; j < cfg.cols; ++j) {
            Group &g = b.group("drain_" + std::to_string(i) + "_" +
                               std::to_string(j));
            g.add(cellPort(outMemName, "addr0"),
                  constant(i, bitsNeeded(
                                  static_cast<uint64_t>(cfg.rows - 1))));
            g.add(cellPort(outMemName, "addr1"),
                  constant(j, bitsNeeded(
                                  static_cast<uint64_t>(cfg.cols - 1))));
            g.add(cellPort(outMemName, "write_data"),
                  cellPort(peName(i, j), "out"));
            g.add(cellPort(outMemName, "write_en"), constant(1, 1));
            g.add(g.doneHole(), cellPort(outMemName, "done"));
        }
    }

    // --- Schedule (Figure 6) -----------------------------------------------
    // PE (i, j) performs its k-th MAC at wavefront step i + j + k; the
    // movement phase before step s loads the operands consumed at s.
    std::vector<ControlPtr> schedule;
    schedule.push_back(ComponentBuilder::enable("init_idx"));
    int last_step = (cfg.rows - 1) + (cfg.cols - 1) + cfg.inner - 1;
    auto active = [&cfg](int s, int i, int j) {
        int k = s - i - j;
        return k >= 0 && k < cfg.inner;
    };
    for (int s = 0; s <= last_step; ++s) {
        std::vector<ControlPtr> moves;
        for (int i = 0; i < cfg.rows; ++i) {
            if (active(s, i, 0))
                moves.push_back(
                    ComponentBuilder::enable("feed_l" + std::to_string(i)));
        }
        for (int j = 0; j < cfg.cols; ++j) {
            if (active(s, 0, j))
                moves.push_back(
                    ComponentBuilder::enable("feed_t" + std::to_string(j)));
        }
        for (int i = 0; i < cfg.rows; ++i) {
            for (int j = 1; j < cfg.cols; ++j) {
                if (active(s, i, j))
                    moves.push_back(ComponentBuilder::enable(
                        "right_" + std::to_string(i) + "_" +
                        std::to_string(j)));
            }
        }
        for (int i = 1; i < cfg.rows; ++i) {
            for (int j = 0; j < cfg.cols; ++j) {
                if (active(s, i, j))
                    moves.push_back(ComponentBuilder::enable(
                        "down_" + std::to_string(i) + "_" +
                        std::to_string(j)));
            }
        }
        std::vector<ControlPtr> computes;
        for (int i = 0; i < cfg.rows; ++i) {
            for (int j = 0; j < cfg.cols; ++j) {
                if (active(s, i, j))
                    computes.push_back(ComponentBuilder::enable(
                        "invoke_" + std::to_string(i) + "_" +
                        std::to_string(j)));
            }
        }
        if (!moves.empty())
            schedule.push_back(ComponentBuilder::par(std::move(moves)));
        if (!computes.empty())
            schedule.push_back(ComponentBuilder::par(std::move(computes)));
    }
    // Drain phase.
    for (int i = 0; i < cfg.rows; ++i) {
        for (int j = 0; j < cfg.cols; ++j) {
            schedule.push_back(ComponentBuilder::enable(
                "drain_" + std::to_string(i) + "_" + std::to_string(j)));
        }
    }
    main.setControl(ComponentBuilder::seq(std::move(schedule)));
}

} // namespace calyx::systolic
