#ifndef CALYX_FRONTENDS_SYSTOLIC_SYSTOLIC_H
#define CALYX_FRONTENDS_SYSTOLIC_SYSTOLIC_H

#include <cstdint>
#include <string>
#include <vector>

#include "ir/context.h"

namespace calyx::systolic {

/**
 * Configuration of the systolic array generator (paper §6.1): an
 * output-stationary rows x cols array computing A (rows x inner) times
 * B (inner x cols) with one processing element per output.
 */
struct Config
{
    int rows = 2;
    int cols = 2;
    int inner = 2;
    Width width = 32;
    /**
     * Name of an existing PE component in the context, or empty to
     * generate the default multiply-accumulate PE. A PE exposes
     * `top` (the value moving down), `left` (the value moving right)
     * and an `out` port holding the accumulated result.
     */
    std::string peComponent;
};

/**
 * Generate the systolic array into `ctx` as component "main".
 *
 * Architecture (Figure 5): per-PE `top`/`left` input registers, feeder
 * groups on the edges that stream the input memories (`l0..`, `t0..`)
 * using per-row/column index counters, fabric groups that move data
 * right and down, and invoke groups that run the PEs. The schedule
 * (Figure 6) interleaves one `par` of data movement with one `par` of
 * PE execution per wavefront step, then drains results into `out_mem`.
 *
 * The generator emits no "static" annotations: with the default PE the
 * Calyx compiler infers every latency (paper §5.3, §6.1).
 */
void generate(Context &ctx, const Config &cfg);

/** Build the default multiply-accumulate PE component `mac_pe`. */
const Component &buildMacPe(Context &ctx, Width width);

/** Names of the input/output memories for simulation harnesses. */
std::string leftMemName(int row);
std::string topMemName(int col);
constexpr const char *outMemName = "out_mem";

} // namespace calyx::systolic

#endif // CALYX_FRONTENDS_SYSTOLIC_SYSTOLIC_H
