#include "frontends/dahlia/interp.h"

#include "sim/models.h" // isqrt
#include "support/error.h"

namespace calyx::dahlia {

namespace {

Width
joinWidth(Width a, Width b)
{
    return a > b ? a : b;
}

uint64_t
foldOp(BinOp op, uint64_t a, uint64_t b, Width w)
{
    uint64_t v = 0;
    switch (op) {
      case BinOp::Add:
        v = a + b;
        break;
      case BinOp::Sub:
        v = a - b;
        break;
      case BinOp::Mul:
        v = a * b;
        break;
      case BinOp::Div:
        v = b == 0 ? ~uint64_t(0) : a / b;
        break;
      case BinOp::Mod:
        v = b == 0 ? a : a % b;
        break;
      case BinOp::Lsh:
        v = b >= 64 ? 0 : a << b;
        break;
      case BinOp::Rsh:
        v = b >= 64 ? 0 : a >> b;
        break;
      case BinOp::And:
        v = a & b;
        break;
      case BinOp::Or:
        v = a | b;
        break;
      case BinOp::Xor:
        v = a ^ b;
        break;
      case BinOp::Lt:
        return a < b;
      case BinOp::Gt:
        return a > b;
      case BinOp::Le:
        return a <= b;
      case BinOp::Ge:
        return a >= b;
      case BinOp::Eq:
        return a == b;
      case BinOp::Ne:
        return a != b;
    }
    return truncate(v, w == 0 ? 64 : w);
}

} // namespace

AstInterp::AstInterp(const Program &program) : prog(&program)
{
    for (const auto &d : program.decls) {
        Mem m;
        m.type = d.type;
        m.data.assign(d.type.totalSize(), 0);
        mems[d.name] = std::move(m);
    }
}

void
AstInterp::pokeMemory(const std::string &name,
                      const std::vector<uint64_t> &data)
{
    auto it = mems.find(name);
    if (it == mems.end())
        fatal("dahlia interp: unknown memory ", name);
    if (data.size() != it->second.data.size())
        fatal("dahlia interp: size mismatch poking ", name);
    for (size_t i = 0; i < data.size(); ++i)
        it->second.data[i] = truncate(data[i], it->second.type.width);
}

const std::vector<uint64_t> &
AstInterp::memory(const std::string &name) const
{
    auto it = mems.find(name);
    if (it == mems.end())
        fatal("dahlia interp: unknown memory ", name);
    return it->second.data;
}

uint64_t
AstInterp::memIndex(const Mem &m, const Expr &access, bool for_write)
{
    // Mirror the hardware: each index is truncated to the address-port
    // width; the flat address of an out-of-bounds read yields 0 and an
    // out-of-bounds write is an error.
    uint64_t flat = 0;
    for (size_t d = 0; d < access.indices.size(); ++d) {
        Value idx = eval(*access.indices[d]);
        Width addr_w = bitsNeeded(m.type.dims[d] - 1);
        uint64_t a = truncate(idx.v, addr_w);
        flat = flat * m.type.dims[d] + a;
    }
    if (flat >= m.data.size()) {
        if (for_write)
            fatal("dahlia interp: out-of-bounds write to ", access.name);
        return m.data.size(); // sentinel: read as 0
    }
    return flat;
}

AstInterp::Value
AstInterp::eval(const Expr &e)
{
    switch (e.kind) {
      case Expr::Kind::Num:
        return Value{e.value, 0};
      case Expr::Kind::Var: {
        auto it = regs.find(e.name);
        if (it == regs.end())
            fatal("dahlia interp: unknown variable ", e.name);
        return it->second;
      }
      case Expr::Kind::Access: {
        auto it = mems.find(e.name);
        if (it == mems.end())
            fatal("dahlia interp: unknown memory ", e.name);
        uint64_t flat = memIndex(it->second, e, false);
        uint64_t v =
            flat >= it->second.data.size() ? 0 : it->second.data[flat];
        return Value{v, it->second.type.width};
      }
      case Expr::Kind::Bin: {
        Value l = eval(*e.lhs);
        Value r = eval(*e.rhs);
        if (l.width == 0 && r.width == 0) {
            // Constant folding stays flexible (mirrors tryFold).
            return Value{foldOp(e.op, l.v, r.v, 0),
                         static_cast<Width>(0)};
        }
        // Mirror codegen::opWidth: literals contribute their magnitude.
        Width w = joinWidth(l.width, r.width);
        if (l.width == 0)
            w = joinWidth(w, bitsNeeded(l.v));
        if (r.width == 0)
            w = joinWidth(w, bitsNeeded(r.v));
        uint64_t a = truncate(l.v, w);
        uint64_t b = truncate(r.v, w);
        uint64_t v = foldOp(e.op, a, b, w);
        return Value{v, isComparison(e.op) ? Width(1) : w};
      }
      case Expr::Kind::Sqrt: {
        Value a = eval(*e.lhs);
        return Value{sim::isqrt(truncate(a.v, 32)), 32};
      }
    }
    panic("bad expr kind");
}

void
AstInterp::exec(const Stmt &s)
{
    switch (s.kind) {
      case Stmt::Kind::Let: {
        uint64_t v = 0;
        if (s.init)
            v = eval(*s.init).v;
        regs[s.name] = Value{truncate(v, s.type.width), s.type.width};
        return;
      }
      case Stmt::Kind::Assign: {
        Value v = eval(*s.rhs);
        if (s.lval->kind == Expr::Kind::Var) {
            auto it = regs.find(s.lval->name);
            if (it == regs.end())
                fatal("dahlia interp: unknown variable ", s.lval->name);
            it->second.v = truncate(v.v, it->second.width);
        } else {
            auto it = mems.find(s.lval->name);
            if (it == mems.end())
                fatal("dahlia interp: unknown memory ", s.lval->name);
            uint64_t flat = memIndex(it->second, *s.lval, true);
            it->second.data[flat] = truncate(v.v, it->second.type.width);
        }
        return;
      }
      case Stmt::Kind::If: {
        if (eval(*s.cond).v != 0)
            exec(*s.body);
        else if (s.elseBody)
            exec(*s.elseBody);
        return;
      }
      case Stmt::Kind::While: {
        while (eval(*s.cond).v != 0)
            exec(*s.body);
        return;
      }
      case Stmt::Kind::For: {
        for (uint64_t i = s.lo; i < s.hi; ++i) {
            regs[s.name] =
                Value{truncate(i, s.type.width), s.type.width};
            exec(*s.body);
            // Additive combine blocks may legally run per iteration
            // instead of per unrolled group.
            if (s.combine)
                exec(*s.combine);
        }
        regs.erase(s.name);
        return;
      }
      case Stmt::Kind::SeqComp:
      case Stmt::Kind::ParComp:
        // Source order is a legal serialization of `;`.
        for (const auto &c : s.stmts)
            exec(*c);
        return;
    }
}

void
AstInterp::run()
{
    regs.clear();
    exec(*prog->body);
}

} // namespace calyx::dahlia
