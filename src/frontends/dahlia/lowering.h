#ifndef CALYX_FRONTENDS_DAHLIA_LOWERING_H
#define CALYX_FRONTENDS_DAHLIA_LOWERING_H

#include "frontends/dahlia/ast.h"

namespace calyx::dahlia {

/**
 * Lowered Dahlia (paper §6.2 "Lowered Dahlia"): the result contains no
 * For statements and no banked memories. The pass performs:
 *
 *  - loop unrolling: `for (i = lo..hi) unroll U` becomes an index
 *    register stepping by U whose body is a `par` of U lanes with the
 *    iterator offset by the lane number (lane-local declarations are
 *    renamed apart);
 *  - bank splitting: a memory banked by B becomes B memories; accesses
 *    resolve their bank statically through affine analysis over
 *    iterator strides and index the bank with `expr >> log2(B)`;
 *  - global renaming so every declaration is unique.
 *
 * Run check() first; this pass assumes a well-typed program.
 */
Program lower(const Program &program);

} // namespace calyx::dahlia

#endif // CALYX_FRONTENDS_DAHLIA_LOWERING_H
