#ifndef CALYX_FRONTENDS_DAHLIA_INTERP_H
#define CALYX_FRONTENDS_DAHLIA_INTERP_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "frontends/dahlia/ast.h"

namespace calyx::dahlia {

/**
 * Reference interpreter for mini-Dahlia programs: the software oracle
 * the compiled hardware is tested against. Executes the *original*
 * (un-lowered) AST sequentially; `;` composition runs in source order,
 * which is a legal serialization of Dahlia's unordered semantics.
 *
 * Width handling mirrors the Calyx backend exactly: literals are
 * flexible until joined with a typed operand, operations evaluate at
 * the joined width, comparisons produce one bit, division by zero
 * yields all-ones quotient and the dividend as remainder (the same
 * deterministic convention as std_div_pipe).
 */
class AstInterp
{
  public:
    explicit AstInterp(const Program &program);

    /** Set a memory's initial contents (row-major for 2-D). */
    void pokeMemory(const std::string &name,
                    const std::vector<uint64_t> &data);

    /** Run the program body. */
    void run();

    /** Memory contents after (or before) running. */
    const std::vector<uint64_t> &memory(const std::string &name) const;

  private:
    struct Value
    {
        uint64_t v = 0;
        Width width = 0; ///< 0 = flexible literal
    };

    struct Mem
    {
        Type type;
        std::vector<uint64_t> data;
    };

    Value eval(const Expr &e);
    uint64_t memIndex(const Mem &m, const Expr &access, bool for_write);
    void exec(const Stmt &s);

    const Program *prog;
    std::map<std::string, Mem> mems;
    std::map<std::string, Value> regs;
};

} // namespace calyx::dahlia

#endif // CALYX_FRONTENDS_DAHLIA_INTERP_H
