#include "frontends/dahlia/ast.h"

namespace calyx::dahlia {

uint64_t
Type::totalSize() const
{
    uint64_t size = 1;
    for (uint64_t d : dims)
        size *= d;
    return size;
}

bool
isComparison(BinOp op)
{
    switch (op) {
      case BinOp::Lt:
      case BinOp::Gt:
      case BinOp::Le:
      case BinOp::Ge:
      case BinOp::Eq:
      case BinOp::Ne:
        return true;
      default:
        return false;
    }
}

bool
isSequentialOp(BinOp op)
{
    return op == BinOp::Mul || op == BinOp::Div || op == BinOp::Mod;
}

ExprPtr
Expr::clone() const
{
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    e->value = value;
    e->name = name;
    e->op = op;
    for (const auto &idx : indices)
        e->indices.push_back(idx->clone());
    if (lhs)
        e->lhs = lhs->clone();
    if (rhs)
        e->rhs = rhs->clone();
    return e;
}

ExprPtr
Expr::num(uint64_t v)
{
    auto e = std::make_unique<Expr>();
    e->kind = Kind::Num;
    e->value = v;
    return e;
}

ExprPtr
Expr::var(std::string name)
{
    auto e = std::make_unique<Expr>();
    e->kind = Kind::Var;
    e->name = std::move(name);
    return e;
}

ExprPtr
Expr::access(std::string name, std::vector<ExprPtr> idx)
{
    auto e = std::make_unique<Expr>();
    e->kind = Kind::Access;
    e->name = std::move(name);
    e->indices = std::move(idx);
    return e;
}

ExprPtr
Expr::bin(BinOp op, ExprPtr l, ExprPtr r)
{
    auto e = std::make_unique<Expr>();
    e->kind = Kind::Bin;
    e->op = op;
    e->lhs = std::move(l);
    e->rhs = std::move(r);
    return e;
}

ExprPtr
Expr::sqrt(ExprPtr inner)
{
    auto e = std::make_unique<Expr>();
    e->kind = Kind::Sqrt;
    e->lhs = std::move(inner);
    return e;
}

StmtPtr
Stmt::clone() const
{
    auto s = std::make_unique<Stmt>();
    s->kind = kind;
    s->name = name;
    s->type = type;
    if (init)
        s->init = init->clone();
    if (lval)
        s->lval = lval->clone();
    if (rhs)
        s->rhs = rhs->clone();
    if (cond)
        s->cond = cond->clone();
    if (body)
        s->body = body->clone();
    if (elseBody)
        s->elseBody = elseBody->clone();
    s->lo = lo;
    s->hi = hi;
    s->unroll = unroll;
    if (combine)
        s->combine = combine->clone();
    for (const auto &st : stmts)
        s->stmts.push_back(st->clone());
    return s;
}

StmtPtr
Stmt::let(std::string name, Type type, ExprPtr init)
{
    auto s = std::make_unique<Stmt>();
    s->kind = Kind::Let;
    s->name = std::move(name);
    s->type = type;
    s->init = std::move(init);
    return s;
}

StmtPtr
Stmt::assign(ExprPtr lval, ExprPtr rhs)
{
    auto s = std::make_unique<Stmt>();
    s->kind = Kind::Assign;
    s->lval = std::move(lval);
    s->rhs = std::move(rhs);
    return s;
}

StmtPtr
Stmt::ifStmt(ExprPtr cond, StmtPtr t, StmtPtr f)
{
    auto s = std::make_unique<Stmt>();
    s->kind = Kind::If;
    s->cond = std::move(cond);
    s->body = std::move(t);
    s->elseBody = std::move(f);
    return s;
}

StmtPtr
Stmt::whileStmt(ExprPtr cond, StmtPtr body)
{
    auto s = std::make_unique<Stmt>();
    s->kind = Kind::While;
    s->cond = std::move(cond);
    s->body = std::move(body);
    return s;
}

StmtPtr
Stmt::forStmt(std::string it, Type t, uint64_t lo, uint64_t hi,
              uint64_t unroll, StmtPtr body)
{
    auto s = std::make_unique<Stmt>();
    s->kind = Kind::For;
    s->name = std::move(it);
    s->type = t;
    s->lo = lo;
    s->hi = hi;
    s->unroll = unroll;
    s->body = std::move(body);
    return s;
}

StmtPtr
Stmt::seq(std::vector<StmtPtr> stmts)
{
    auto s = std::make_unique<Stmt>();
    s->kind = Kind::SeqComp;
    s->stmts = std::move(stmts);
    return s;
}

StmtPtr
Stmt::par(std::vector<StmtPtr> stmts)
{
    auto s = std::make_unique<Stmt>();
    s->kind = Kind::ParComp;
    s->stmts = std::move(stmts);
    return s;
}

Program
Program::clone() const
{
    Program p;
    p.decls = decls;
    if (body)
        p.body = body->clone();
    return p;
}

} // namespace calyx::dahlia
