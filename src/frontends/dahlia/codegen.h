#ifndef CALYX_FRONTENDS_DAHLIA_CODEGEN_H
#define CALYX_FRONTENDS_DAHLIA_CODEGEN_H

#include "frontends/dahlia/ast.h"
#include "ir/context.h"

namespace calyx::dahlia {

/**
 * The Dahlia-to-Calyx backend (paper §6.2): a bottom-up pass with a
 * one-to-one construct mapping —
 *
 *  - memory/variable assignments become groups performing the update,
 *  - ordered composition (`---`) becomes `seq`,
 *  - unordered composition (`;`) becomes `par` when the statements'
 *    read/write sets are independent (including memory port usage) and
 *    `seq` otherwise, preserving data flow,
 *  - loops and conditionals map to `while` and `if` with combinational
 *    condition groups,
 *  - multiplies, divides and square roots become their own groups
 *    computing into temporary registers; multiply/divide groups carry
 *    "static" latency annotations, sqrt does not (its latency is
 *    data-dependent), exercising mixed latency-(in)sensitive
 *    compilation.
 *
 * Expects a *lowered* program (no For statements, no banks). Builds the
 * "main" component; `decl` memories become cells marked "external" whose
 * contents test harnesses poke and peek.
 */
Context codegen(const Program &lowered);

/** check + lower + codegen in one step. */
Context compileDahlia(const Program &program);

} // namespace calyx::dahlia

#endif // CALYX_FRONTENDS_DAHLIA_CODEGEN_H
