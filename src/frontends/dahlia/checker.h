#ifndef CALYX_FRONTENDS_DAHLIA_CHECKER_H
#define CALYX_FRONTENDS_DAHLIA_CHECKER_H

#include <map>
#include <optional>
#include <string>

#include "frontends/dahlia/ast.h"

namespace calyx::dahlia {

/**
 * Affine view of an index expression: constant + sum of coeff * var.
 * The bank checker and bank-splitting lowering both rely on it.
 */
struct Affine
{
    std::map<std::string, int64_t> coeffs;
    int64_t constant = 0;
};

/** Affine decomposition, or nullopt for non-affine expressions. */
std::optional<Affine> affineOf(const Expr &e);

/**
 * The mini-Dahlia checker: scoping, arity, and the substructural
 * memory/unroll rules that stand in for Dahlia's affine type system
 * (paper §6.2). A program that fails these rules is "not expressible"
 * in Dahlia — the paper's Figure 8 shows missing unrolled bars for
 * exactly such benchmarks. Rules for a loop unrolled by U:
 *
 *  - banked dimensions must have power-of-two bank counts dividing the
 *    dimension;
 *  - an index containing the unrolled iterator must be affine with
 *    coefficient 1 on it, into a dimension banked by exactly U;
 *  - writes whose indices do not depend on the unrolled iterator would
 *    alias across lanes and are rejected;
 *  - scalars declared outside the loop cannot be written inside it
 *    (loop-carried dependence across lanes);
 *  - U must divide the trip count.
 *
 * Throws Error on violations.
 */
void check(const Program &program);

} // namespace calyx::dahlia

#endif // CALYX_FRONTENDS_DAHLIA_CHECKER_H
