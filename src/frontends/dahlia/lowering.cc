#include "frontends/dahlia/lowering.h"

#include <cstdlib>
#include <map>
#include <vector>

#include "frontends/dahlia/checker.h"
#include "support/error.h"

namespace calyx::dahlia {

namespace {

uint64_t
log2u(uint64_t v)
{
    uint64_t l = 0;
    while ((uint64_t(1) << l) < v)
        ++l;
    return l;
}

/** Stride/phase knowledge about an iterator register. */
struct IterInfo
{
    uint64_t modulus = 1; ///< iterator ≡ residue (mod modulus)
    uint64_t residue = 0;
};

class LoweringPass
{
  public:
    explicit LoweringPass(const Program &p) : src(p) {}

    Program
    run()
    {
        Program out;
        for (const auto &d : src.decls) {
            memories[d.name] = d.type;
            uint64_t bank = 1;
            size_t banked_dim = 0;
            for (size_t i = 0; i < d.type.banks.size(); ++i) {
                if (d.type.banks[i] > 1) {
                    bank = d.type.banks[i];
                    banked_dim = i;
                }
            }
            if (bank == 1) {
                Decl nd = d;
                for (auto &b : nd.type.banks)
                    b = 1;
                out.decls.push_back(nd);
            } else {
                for (uint64_t b = 0; b < bank; ++b) {
                    Decl nd;
                    nd.name = bankName(d.name, b);
                    nd.type = d.type;
                    nd.type.dims[banked_dim] /= bank;
                    for (auto &bk : nd.type.banks)
                        bk = 1;
                    out.decls.push_back(nd);
                }
            }
        }
        scopes.emplace_back();
        out.body = stmt(*src.body);
        return out;
    }

  private:
    const Program &src;
    std::map<std::string, Type> memories;
    std::map<std::string, IterInfo> iters; // by lowered name
    std::vector<std::map<std::string, std::string>> scopes;
    /** Active lane rename maps while lowering a combine block. */
    const std::vector<std::map<std::string, std::string>> *combineLanes =
        nullptr;
    int counter = 0;

    static std::string
    bankName(const std::string &mem, uint64_t bank)
    {
        return mem + "_b" + std::to_string(bank);
    }

    std::string
    fresh(const std::string &base)
    {
        return base + "_" + std::to_string(counter++);
    }

    std::string
    resolve(const std::string &name) const
    {
        for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
            auto found = it->find(name);
            if (found != it->end())
                return found->second;
        }
        return name;
    }

    std::string
    declare(const std::string &name)
    {
        std::string lowered = fresh(name);
        scopes.back()[name] = lowered;
        return lowered;
    }

    /**
     * Evaluate `aff mod m` using iterator stride knowledge, or nullopt.
     */
    std::optional<uint64_t>
    affineMod(const Affine &aff, uint64_t m) const
    {
        int64_t total = aff.constant;
        for (const auto &[var, coeff] : aff.coeffs) {
            auto it = iters.find(var);
            uint64_t modulus = it != iters.end() ? it->second.modulus : 1;
            uint64_t residue = it != iters.end() ? it->second.residue : 0;
            // coeff * var mod m is known iff coeff * modulus ≡ 0 (mod m).
            if ((static_cast<uint64_t>(std::abs(coeff)) * modulus) % m !=
                0) {
                return std::nullopt;
            }
            total += coeff * static_cast<int64_t>(residue);
        }
        int64_t r = total % static_cast<int64_t>(m);
        if (r < 0)
            r += static_cast<int64_t>(m);
        return static_cast<uint64_t>(r);
    }

    ExprPtr
    expr(const Expr &e)
    {
        switch (e.kind) {
          case Expr::Kind::Num:
            return Expr::num(e.value);
          case Expr::Kind::Var:
            if (combineLanes) {
                auto lane0 = (*combineLanes)[0].find(e.name);
                if (lane0 != (*combineLanes)[0].end()) {
                    // Sum of the per-lane copies.
                    ExprPtr sum = Expr::var(lane0->second);
                    for (size_t u = 1; u < combineLanes->size(); ++u) {
                        sum = Expr::bin(
                            BinOp::Add, std::move(sum),
                            Expr::var((*combineLanes)[u].at(e.name)));
                    }
                    return sum;
                }
            }
            return Expr::var(resolve(e.name));
          case Expr::Kind::Bin:
            return Expr::bin(e.op, expr(*e.lhs), expr(*e.rhs));
          case Expr::Kind::Sqrt:
            return Expr::sqrt(expr(*e.lhs));
          case Expr::Kind::Access:
            return access(e);
        }
        panic("bad expr kind");
    }

    ExprPtr
    access(const Expr &e)
    {
        auto mit = memories.find(e.name);
        if (mit == memories.end())
            fatal("dahlia lowering: unknown memory ", e.name);
        const Type &t = mit->second;

        uint64_t bank = 1;
        size_t banked_dim = 0;
        for (size_t i = 0; i < t.banks.size(); ++i) {
            if (t.banks[i] > 1) {
                bank = t.banks[i];
                banked_dim = i;
            }
        }

        std::vector<ExprPtr> idx;
        for (const auto &i : e.indices)
            idx.push_back(expr(*i));

        if (bank == 1)
            return Expr::access(e.name, std::move(idx));

        auto aff = affineOf(*idx[banked_dim]);
        if (!aff)
            fatal("dahlia lowering: non-affine banked index on ", e.name);
        auto r = affineMod(*aff, bank);
        if (!r)
            fatal("dahlia lowering: cannot statically resolve bank of ",
                  e.name);
        idx[banked_dim] = Expr::bin(BinOp::Rsh, std::move(idx[banked_dim]),
                                    Expr::num(log2u(bank)));
        return Expr::access(bankName(e.name, *r), std::move(idx));
    }

    StmtPtr
    stmt(const Stmt &s)
    {
        switch (s.kind) {
          case Stmt::Kind::Let: {
            ExprPtr init = s.init ? expr(*s.init) : nullptr;
            std::string lowered = declare(s.name);
            return Stmt::let(lowered, s.type, std::move(init));
          }
          case Stmt::Kind::Assign: {
            ExprPtr rhs = expr(*s.rhs);
            ExprPtr lval = s.lval->kind == Expr::Kind::Var
                               ? Expr::var(resolve(s.lval->name))
                               : access(*s.lval);
            return Stmt::assign(std::move(lval), std::move(rhs));
          }
          case Stmt::Kind::If: {
            ExprPtr cond = expr(*s.cond);
            scopes.emplace_back();
            StmtPtr t = stmt(*s.body);
            scopes.pop_back();
            StmtPtr f;
            if (s.elseBody) {
                scopes.emplace_back();
                f = stmt(*s.elseBody);
                scopes.pop_back();
            }
            return Stmt::ifStmt(std::move(cond), std::move(t),
                                std::move(f));
          }
          case Stmt::Kind::While: {
            ExprPtr cond = expr(*s.cond);
            scopes.emplace_back();
            StmtPtr body = stmt(*s.body);
            scopes.pop_back();
            return Stmt::whileStmt(std::move(cond), std::move(body));
          }
          case Stmt::Kind::For:
            return lowerFor(s);
          case Stmt::Kind::SeqComp:
          case Stmt::Kind::ParComp: {
            std::vector<StmtPtr> out;
            for (const auto &c : s.stmts)
                out.push_back(stmt(*c));
            return s.kind == Stmt::Kind::SeqComp
                       ? Stmt::seq(std::move(out))
                       : Stmt::par(std::move(out));
          }
        }
        panic("bad stmt kind");
    }

    StmtPtr
    lowerFor(const Stmt &s)
    {
        uint64_t unroll = std::max<uint64_t>(1, s.unroll);
        scopes.emplace_back();
        std::string it = declare(s.name);
        iters[it] =
            IterInfo{unroll, unroll > 1 ? s.lo % unroll : uint64_t(0)};

        // Lanes: substitute `i -> i + u` at the source level *before*
        // lowering so bank resolution sees each lane's true offset,
        // then lower each lane in its own scope (lane-local lets get
        // fresh names automatically).
        std::vector<StmtPtr> lanes;
        std::vector<std::map<std::string, std::string>> lane_maps;
        for (uint64_t u = 0; u < unroll; ++u) {
            StmtPtr lane_src = s.body->clone();
            if (u > 0)
                rewriteStmt(*lane_src, s.name, u);
            scopes.emplace_back();
            lanes.push_back(stmt(*lane_src));
            lane_maps.push_back(scopes.back());
            scopes.pop_back();
        }

        StmtPtr body = unroll == 1 ? std::move(lanes[0])
                                   : Stmt::par(std::move(lanes));

        // while (it < hi) { body --- combine --- it := it + U }
        std::vector<StmtPtr> loop_body;
        loop_body.push_back(std::move(body));
        if (s.combine) {
            // Lane-local values referenced in the combine block expand
            // to the sum over all lanes (additive reductions).
            combineLanes = &lane_maps;
            scopes.emplace_back();
            loop_body.push_back(stmt(*s.combine));
            scopes.pop_back();
            combineLanes = nullptr;
        }
        iters.erase(it);
        scopes.pop_back();
        loop_body.push_back(Stmt::assign(
            Expr::var(it),
            Expr::bin(BinOp::Add, Expr::var(it), Expr::num(unroll))));
        StmtPtr loop = Stmt::whileStmt(
            Expr::bin(BinOp::Lt, Expr::var(it), Expr::num(s.hi)),
            Stmt::seq(std::move(loop_body)));

        std::vector<StmtPtr> out;
        out.push_back(Stmt::let(it, s.type, Expr::num(s.lo)));
        out.push_back(std::move(loop));
        return Stmt::seq(std::move(out));
    }

    static void
    rewriteExpr(ExprPtr &e, const std::string &it, uint64_t u)
    {
        switch (e->kind) {
          case Expr::Kind::Num:
            return;
          case Expr::Kind::Var:
            if (e->name == it) {
                e = Expr::bin(BinOp::Add, Expr::var(it), Expr::num(u));
            }
            return;
          case Expr::Kind::Access:
            for (auto &i : e->indices)
                rewriteExpr(i, it, u);
            return;
          case Expr::Kind::Bin:
            rewriteExpr(e->lhs, it, u);
            rewriteExpr(e->rhs, it, u);
            return;
          case Expr::Kind::Sqrt:
            rewriteExpr(e->lhs, it, u);
            return;
        }
    }

    static void
    rewriteStmt(Stmt &s, const std::string &it, uint64_t u)
    {
        if (s.init)
            rewriteExpr(s.init, it, u);
        if (s.lval)
            rewriteExpr(s.lval, it, u);
        if (s.rhs)
            rewriteExpr(s.rhs, it, u);
        if (s.cond)
            rewriteExpr(s.cond, it, u);
        if (s.body)
            rewriteStmt(*s.body, it, u);
        if (s.elseBody)
            rewriteStmt(*s.elseBody, it, u);
        for (auto &c : s.stmts)
            rewriteStmt(*c, it, u);
    }
};

} // namespace

Program
lower(const Program &program)
{
    return LoweringPass(program).run();
}

} // namespace calyx::dahlia
