#ifndef CALYX_FRONTENDS_DAHLIA_PARSER_H
#define CALYX_FRONTENDS_DAHLIA_PARSER_H

#include <string>

#include "frontends/dahlia/ast.h"

namespace calyx::dahlia {

/**
 * Parser for mini-Dahlia (paper §6.2). Composition operators follow
 * Dahlia's precedence: `;` (unordered) binds tighter than `---`
 * (ordered), so `a; b --- c` parses as `(a; b) --- c`.
 */
Program parse(const std::string &source);

} // namespace calyx::dahlia

#endif // CALYX_FRONTENDS_DAHLIA_PARSER_H
