#ifndef CALYX_FRONTENDS_DAHLIA_AST_H
#define CALYX_FRONTENDS_DAHLIA_AST_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/bits.h"

namespace calyx::dahlia {

/**
 * Types in mini-Dahlia (paper §6.2): unsigned bit vectors `ubit<W>`,
 * optionally with array dimensions that may be banked, e.g.
 * `ubit<32>[8 bank 2][4]`.
 */
struct Type
{
    Width width = 32;
    std::vector<uint64_t> dims;
    std::vector<uint64_t> banks; ///< Parallel to dims (1 = unbanked).

    bool isMemory() const { return !dims.empty(); }
    uint64_t totalSize() const;
};

// --- Expressions -----------------------------------------------------------

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Lsh,
    Rsh,
    And,
    Or,
    Xor,
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Ne,
};

/** Whether the result of `op` is a single bit. */
bool isComparison(BinOp op);

/** Whether `op` maps to a multi-cycle functional unit. */
bool isSequentialOp(BinOp op);

struct Expr
{
    enum class Kind { Num, Var, Access, Bin, Sqrt };

    Kind kind = Kind::Num;
    uint64_t value = 0;              // Num
    std::string name;                // Var / Access
    std::vector<ExprPtr> indices;    // Access
    BinOp op = BinOp::Add;           // Bin
    ExprPtr lhs, rhs;                // Bin (Sqrt uses lhs)

    ExprPtr clone() const;

    static ExprPtr num(uint64_t v);
    static ExprPtr var(std::string name);
    static ExprPtr access(std::string name, std::vector<ExprPtr> idx);
    static ExprPtr bin(BinOp op, ExprPtr l, ExprPtr r);
    static ExprPtr sqrt(ExprPtr e);
};

// --- Statements --------------------------------------------------------------

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt
{
    enum class Kind {
        Let,     ///< `let x: ubit<W> = e;` declares a register
        Assign,  ///< `lval := e`
        If,
        While,
        For,     ///< `for (let i: ubit<W> = lo..hi) unroll U { body }`
        SeqComp, ///< ordered composition `a --- b`
        ParComp, ///< unordered composition `a ; b`
    };

    Kind kind = Kind::SeqComp;

    // Let / For iterator
    std::string name;
    Type type;
    ExprPtr init; // optional for Let

    // Assign
    ExprPtr lval; // Var or Access
    ExprPtr rhs;

    // If / While / For
    ExprPtr cond;
    StmtPtr body;      // If: true branch; While/For: body
    StmtPtr elseBody;  // If only (may be null)

    // For
    uint64_t lo = 0, hi = 0;
    uint64_t unroll = 1;
    /**
     * Optional `combine` block: additive reductions of lane-local lets
     * into enclosing state, run after each unrolled iteration group
     * (Dahlia's reduction construct). References to a lane-local
     * variable v expand to the sum v_0 + ... + v_{U-1}.
     */
    StmtPtr combine;

    // SeqComp / ParComp
    std::vector<StmtPtr> stmts;

    StmtPtr clone() const;

    static StmtPtr let(std::string name, Type type, ExprPtr init);
    static StmtPtr assign(ExprPtr lval, ExprPtr rhs);
    static StmtPtr ifStmt(ExprPtr cond, StmtPtr t, StmtPtr f);
    static StmtPtr whileStmt(ExprPtr cond, StmtPtr body);
    static StmtPtr forStmt(std::string it, Type t, uint64_t lo, uint64_t hi,
                           uint64_t unroll, StmtPtr body);
    static StmtPtr seq(std::vector<StmtPtr> stmts);
    static StmtPtr par(std::vector<StmtPtr> stmts);
};

/** A memory-interface declaration: `decl a: ubit<32>[8];`. */
struct Decl
{
    std::string name;
    Type type;
};

/** A whole mini-Dahlia program. */
struct Program
{
    std::vector<Decl> decls;
    StmtPtr body;

    Program() = default;
    Program(Program &&) = default;
    Program &operator=(Program &&) = default;

    Program clone() const;
};

} // namespace calyx::dahlia

#endif // CALYX_FRONTENDS_DAHLIA_AST_H
