#ifndef CALYX_FRONTENDS_DAHLIA_LEXER_H
#define CALYX_FRONTENDS_DAHLIA_LEXER_H

#include <cstdint>
#include <string>
#include <vector>

namespace calyx::dahlia {

/** Token kinds of mini-Dahlia. */
enum class Tok {
    Ident,
    Number,
    Symbol, // punctuation / operators, spelling in `text`
    End,
};

struct Token
{
    Tok kind = Tok::End;
    std::string text;
    uint64_t number = 0;
    int line = 1;
};

/** Tokenize mini-Dahlia source. Throws Error on bad characters. */
std::vector<Token> tokenize(const std::string &source);

} // namespace calyx::dahlia

#endif // CALYX_FRONTENDS_DAHLIA_LEXER_H
