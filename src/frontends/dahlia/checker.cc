#include "frontends/dahlia/checker.h"

#include <set>
#include <vector>

#include "support/error.h"

namespace calyx::dahlia {

std::optional<Affine>
affineOf(const Expr &e)
{
    switch (e.kind) {
      case Expr::Kind::Num:
        return Affine{{}, static_cast<int64_t>(e.value)};
      case Expr::Kind::Var: {
        Affine a;
        a.coeffs[e.name] = 1;
        return a;
      }
      case Expr::Kind::Bin: {
        auto l = affineOf(*e.lhs);
        auto r = affineOf(*e.rhs);
        if (!l || !r)
            return std::nullopt;
        switch (e.op) {
          case BinOp::Add:
          case BinOp::Sub: {
            Affine out = *l;
            int64_t sign = e.op == BinOp::Add ? 1 : -1;
            out.constant += sign * r->constant;
            for (const auto &[v, c] : r->coeffs) {
                out.coeffs[v] += sign * c;
                if (out.coeffs[v] == 0)
                    out.coeffs.erase(v);
            }
            return out;
          }
          case BinOp::Mul: {
            // One side must be constant.
            const Affine *cst = l->coeffs.empty() ? &*l : nullptr;
            const Affine *var = cst ? &*r : nullptr;
            if (!cst && r->coeffs.empty()) {
                cst = &*r;
                var = &*l;
            }
            if (!cst)
                return std::nullopt;
            Affine out;
            out.constant = var->constant * cst->constant;
            for (const auto &[v, c] : var->coeffs)
                out.coeffs[v] = c * cst->constant;
            return out;
          }
          default:
            return std::nullopt;
        }
      }
      default:
        return std::nullopt;
    }
}

namespace {

bool
isPowerOfTwo(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** One in-scope unrolled loop. */
struct UnrollCtx
{
    std::string iter;
    uint64_t factor;
    /** Scalars declared before this loop (not writable inside it). */
    std::set<std::string> outer_scalars;
};

class Checker
{
  public:
    explicit Checker(const Program &p) : prog(p) {}

    void
    run()
    {
        for (const auto &d : prog.decls) {
            if (memories.count(d.name))
                fatal("dahlia: duplicate decl ", d.name);
            if (d.type.dims.size() > 2)
                fatal("dahlia: at most 2 dimensions supported (", d.name,
                      ")");
            int banked = 0;
            for (size_t i = 0; i < d.type.dims.size(); ++i) {
                uint64_t dim = d.type.dims[i];
                uint64_t bank = d.type.banks[i];
                if (bank > 1) {
                    ++banked;
                    if (!isPowerOfTwo(bank))
                        fatal("dahlia: bank count must be a power of two "
                              "(memory ",
                              d.name, ")");
                    if (dim % bank != 0)
                        fatal("dahlia: bank count must divide the "
                              "dimension (memory ",
                              d.name, ")");
                }
            }
            if (banked > 1)
                fatal("dahlia: at most one banked dimension (memory ",
                      d.name, ")");
            memories[d.name] = d.type;
        }
        scopes.emplace_back();
        stmt(*prog.body);
    }

  private:
    const Program &prog;
    std::map<std::string, Type> memories;
    std::vector<std::set<std::string>> scopes; // scalar names per scope
    std::vector<UnrollCtx> unrolls;

    bool
    scalarDefined(const std::string &name) const
    {
        for (const auto &s : scopes) {
            if (s.count(name))
                return true;
        }
        return false;
    }

    std::set<std::string>
    allScalars() const
    {
        std::set<std::string> out;
        for (const auto &s : scopes)
            out.insert(s.begin(), s.end());
        return out;
    }

    void
    declareScalar(const std::string &name)
    {
        if (scopes.back().count(name))
            fatal("dahlia: duplicate declaration of ", name,
                  " in the same scope");
        if (memories.count(name))
            fatal("dahlia: ", name, " already declared as a memory");
        scopes.back().insert(name);
    }

    void
    access(const Expr &e, bool is_write)
    {
        auto mit = memories.find(e.name);
        if (mit == memories.end())
            fatal("dahlia: unknown memory ", e.name);
        const Type &t = mit->second;
        if (e.indices.size() != t.dims.size())
            fatal("dahlia: memory ", e.name, " needs ", t.dims.size(),
                  " indices, got ", e.indices.size());

        for (const auto &u : unrolls) {
            bool uses_iter = false;
            for (size_t d = 0; d < e.indices.size(); ++d) {
                auto aff = affineOf(*e.indices[d]);
                bool contains = false;
                if (aff) {
                    auto cit = aff->coeffs.find(u.iter);
                    contains =
                        cit != aff->coeffs.end() && cit->second != 0;
                } else {
                    // Non-affine: conservatively assume it may contain
                    // the iterator if the iterator appears syntactically.
                    contains = mentions(*e.indices[d], u.iter);
                    if (contains)
                        fatal("dahlia: non-affine index on memory ",
                              e.name, " inside loop unrolled by ",
                              u.factor);
                }
                if (!contains)
                    continue;
                uses_iter = true;
                if (aff->coeffs[u.iter] != 1)
                    fatal("dahlia: unrolled iterator ", u.iter,
                          " must have coefficient 1 indexing memory ",
                          e.name);
                if (t.banks[d] != u.factor)
                    fatal("dahlia: memory ", e.name,
                          " must be banked by the unroll factor ",
                          u.factor, " on the accessed dimension");
            }
            if (!uses_iter && is_write)
                fatal("dahlia: write to ", e.name,
                      " aliases across lanes of loop unrolled by ",
                      u.factor);
        }

        for (const auto &idx : e.indices)
            expr(*idx);
    }

    static bool
    mentions(const Expr &e, const std::string &name)
    {
        switch (e.kind) {
          case Expr::Kind::Num:
            return false;
          case Expr::Kind::Var:
            return e.name == name;
          case Expr::Kind::Access: {
            for (const auto &i : e.indices) {
                if (mentions(*i, name))
                    return true;
            }
            return false;
          }
          case Expr::Kind::Bin:
            return mentions(*e.lhs, name) || mentions(*e.rhs, name);
          case Expr::Kind::Sqrt:
            return mentions(*e.lhs, name);
        }
        return false;
    }

    void
    expr(const Expr &e)
    {
        switch (e.kind) {
          case Expr::Kind::Num:
            return;
          case Expr::Kind::Var:
            if (!scalarDefined(e.name))
                fatal("dahlia: unknown variable ", e.name);
            return;
          case Expr::Kind::Access:
            access(e, false);
            return;
          case Expr::Kind::Bin:
            expr(*e.lhs);
            expr(*e.rhs);
            return;
          case Expr::Kind::Sqrt:
            expr(*e.lhs);
            return;
        }
    }

    void
    stmt(const Stmt &s)
    {
        switch (s.kind) {
          case Stmt::Kind::Let:
            if (s.init)
                expr(*s.init);
            declareScalar(s.name);
            return;
          case Stmt::Kind::Assign: {
            expr(*s.rhs);
            if (s.lval->kind == Expr::Kind::Var) {
                if (!scalarDefined(s.lval->name))
                    fatal("dahlia: assignment to unknown variable ",
                          s.lval->name);
                for (const auto &u : unrolls) {
                    if (u.outer_scalars.count(s.lval->name))
                        fatal("dahlia: write to ", s.lval->name,
                              " declared outside a loop unrolled by ",
                              u.factor,
                              " creates a cross-lane dependence");
                    if (s.lval->name == u.iter)
                        fatal("dahlia: loop iterator ", u.iter,
                              " is immutable");
                }
            } else {
                access(*s.lval, true);
            }
            return;
          }
          case Stmt::Kind::If:
            expr(*s.cond);
            pushScope();
            stmt(*s.body);
            popScope();
            if (s.elseBody) {
                pushScope();
                stmt(*s.elseBody);
                popScope();
            }
            return;
          case Stmt::Kind::While:
            expr(*s.cond);
            pushScope();
            stmt(*s.body);
            popScope();
            return;
          case Stmt::Kind::For: {
            if (s.unroll == 0)
                fatal("dahlia: unroll factor must be positive");
            uint64_t trip = s.hi - s.lo;
            if (s.unroll > 1) {
                if (!isPowerOfTwo(s.unroll))
                    fatal("dahlia: unroll factor must be a power of two");
                if (trip % s.unroll != 0)
                    fatal("dahlia: unroll factor ", s.unroll,
                          " must divide trip count ", trip);
                unrolls.push_back(
                    UnrollCtx{s.name, s.unroll, allScalars()});
            }
            pushScope();
            declareScalar(s.name);
            stmt(*s.body);
            if (s.unroll > 1)
                unrolls.pop_back();
            // The combine block reduces lane-local values into outer
            // state; it runs outside the unrolled context but still
            // sees the body's scope.
            if (s.combine)
                stmt(*s.combine);
            popScope();
            return;
          }
          case Stmt::Kind::SeqComp:
          case Stmt::Kind::ParComp:
            for (const auto &c : s.stmts)
                stmt(*c);
            return;
        }
    }

    void pushScope() { scopes.emplace_back(); }
    void popScope() { scopes.pop_back(); }
};

} // namespace

void
check(const Program &program)
{
    Checker(program).run();
}

} // namespace calyx::dahlia
