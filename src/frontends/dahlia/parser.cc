#include "frontends/dahlia/parser.h"

#include "frontends/dahlia/lexer.h"
#include "support/error.h"

namespace calyx::dahlia {

namespace {

class DahliaParser
{
  public:
    explicit DahliaParser(const std::string &src) : toks(tokenize(src)) {}

    Program
    parse()
    {
        Program p;
        while (isIdent("decl")) {
            next();
            Decl d;
            d.name = ident();
            expectSymbol(":");
            d.type = type();
            expectSymbol(";");
            if (!d.type.isMemory())
                err("decl must declare a memory (add dimensions)");
            p.decls.push_back(std::move(d));
        }
        p.body = composition();
        if (peek().kind != Tok::End)
            err("trailing input after program body");
        return p;
    }

  private:
    std::vector<Token> toks;
    size_t pos = 0;

    const Token &peek() const { return toks[pos]; }
    Token
    next()
    {
        return toks[pos++];
    }

    [[noreturn]] void
    err(const std::string &msg) const
    {
        fatal("dahlia parse error at line ", peek().line, ": ", msg,
              " (near '", peek().text, "')");
    }

    bool
    isIdent(const std::string &s) const
    {
        return peek().kind == Tok::Ident && peek().text == s;
    }

    bool
    isSymbol(const std::string &s) const
    {
        return peek().kind == Tok::Symbol && peek().text == s;
    }

    void
    expectSymbol(const std::string &s)
    {
        if (!isSymbol(s))
            err("expected '" + s + "'");
        next();
    }

    std::string
    ident()
    {
        if (peek().kind != Tok::Ident)
            err("expected identifier");
        return next().text;
    }

    uint64_t
    number()
    {
        if (peek().kind != Tok::Number)
            err("expected number");
        return next().number;
    }

    Type
    type()
    {
        Type t;
        if (!isIdent("ubit"))
            err("expected type 'ubit<...>'");
        next();
        expectSymbol("<");
        t.width = static_cast<Width>(number());
        expectSymbol(">");
        while (isSymbol("[")) {
            next();
            uint64_t dim = number();
            uint64_t bank = 1;
            if (isIdent("bank")) {
                next();
                bank = number();
            }
            expectSymbol("]");
            t.dims.push_back(dim);
            t.banks.push_back(bank);
        }
        return t;
    }

    /**
     * Composition inside a block: `;`-separated runs form ParComp,
     * `---`-separated runs form SeqComp; `---` binds loosest.
     */
    StmtPtr
    composition()
    {
        std::vector<StmtPtr> seq_items;
        std::vector<StmtPtr> par_items;
        par_items.push_back(statement());
        while (true) {
            if (isSymbol(";")) {
                next();
                if (atBlockEnd())
                    break; // trailing separator
                if (isSymbol("---"))
                    continue; // `a; --- b`: `;` acted as a terminator
                par_items.push_back(statement());
            } else if (isSymbol("---")) {
                next();
                seq_items.push_back(wrapPar(std::move(par_items)));
                par_items.clear();
                par_items.push_back(statement());
            } else {
                break;
            }
        }
        seq_items.push_back(wrapPar(std::move(par_items)));
        if (seq_items.size() == 1)
            return std::move(seq_items[0]);
        return Stmt::seq(std::move(seq_items));
    }

    bool
    atBlockEnd() const
    {
        return peek().kind == Tok::End || isSymbol("}");
    }

    static StmtPtr
    wrapPar(std::vector<StmtPtr> items)
    {
        if (items.size() == 1)
            return std::move(items[0]);
        return Stmt::par(std::move(items));
    }

    StmtPtr
    block()
    {
        expectSymbol("{");
        StmtPtr body = composition();
        expectSymbol("}");
        return body;
    }

    StmtPtr
    statement()
    {
        if (isIdent("let")) {
            next();
            std::string name = ident();
            expectSymbol(":");
            Type t = type();
            if (t.isMemory())
                err("let declares scalars; use decl for memories");
            ExprPtr init;
            if (isSymbol("=")) {
                next();
                init = expression();
            }
            return Stmt::let(std::move(name), t, std::move(init));
        }
        if (isIdent("if")) {
            next();
            expectSymbol("(");
            ExprPtr cond = expression();
            expectSymbol(")");
            StmtPtr t = block();
            StmtPtr f;
            if (isIdent("else")) {
                next();
                f = block();
            }
            return Stmt::ifStmt(std::move(cond), std::move(t),
                                std::move(f));
        }
        if (isIdent("while")) {
            next();
            expectSymbol("(");
            ExprPtr cond = expression();
            expectSymbol(")");
            return Stmt::whileStmt(std::move(cond), block());
        }
        if (isIdent("for")) {
            next();
            expectSymbol("(");
            if (!isIdent("let"))
                err("expected 'let' in for header");
            next();
            std::string it = ident();
            expectSymbol(":");
            Type t = type();
            expectSymbol("=");
            uint64_t lo = number();
            expectSymbol("..");
            uint64_t hi = number();
            expectSymbol(")");
            uint64_t unroll = 1;
            if (isIdent("unroll")) {
                next();
                unroll = number();
            }
            if (hi < lo)
                err("for range is empty");
            StmtPtr body = block();
            StmtPtr combine;
            if (isIdent("combine")) {
                next();
                combine = block();
            }
            StmtPtr node = Stmt::forStmt(std::move(it), t, lo, hi,
                                         unroll, std::move(body));
            node->combine = std::move(combine);
            return node;
        }
        if (isSymbol("{"))
            return block();

        // lval := expr
        ExprPtr lval = primary();
        if (lval->kind != Expr::Kind::Var &&
            lval->kind != Expr::Kind::Access) {
            err("expected assignable expression before ':='");
        }
        expectSymbol(":=");
        ExprPtr rhs = expression();
        return Stmt::assign(std::move(lval), std::move(rhs));
    }

    // Expression precedence climbing. Levels (loosest first):
    // || , && , | , ^ , & , ==/!= , </>/<=/>= , <</>> , +/- , */ / %.
    struct OpInfo
    {
        BinOp op;
        int prec;
    };

    bool
    peekOp(OpInfo &info) const
    {
        if (peek().kind != Tok::Symbol)
            return false;
        const std::string &s = peek().text;
        static const std::pair<const char *, OpInfo> table[] = {
            {"||", {BinOp::Or, 1}},  {"&&", {BinOp::And, 2}},
            {"|", {BinOp::Or, 3}},   {"^", {BinOp::Xor, 4}},
            {"&", {BinOp::And, 5}},  {"==", {BinOp::Eq, 6}},
            {"!=", {BinOp::Ne, 6}},  {"<", {BinOp::Lt, 7}},
            {">", {BinOp::Gt, 7}},   {"<=", {BinOp::Le, 7}},
            {">=", {BinOp::Ge, 7}},  {"<<", {BinOp::Lsh, 8}},
            {">>", {BinOp::Rsh, 8}}, {"+", {BinOp::Add, 9}},
            {"-", {BinOp::Sub, 9}},  {"*", {BinOp::Mul, 10}},
            {"/", {BinOp::Div, 10}}, {"%", {BinOp::Mod, 10}},
        };
        for (const auto &[text, i] : table) {
            if (s == text) {
                info = i;
                return true;
            }
        }
        return false;
    }

    ExprPtr
    expression(int min_prec = 1)
    {
        ExprPtr lhs = primary();
        OpInfo info;
        while (peekOp(info) && info.prec >= min_prec) {
            next();
            ExprPtr rhs = expression(info.prec + 1);
            lhs = Expr::bin(info.op, std::move(lhs), std::move(rhs));
        }
        return lhs;
    }

    ExprPtr
    primary()
    {
        if (peek().kind == Tok::Number)
            return Expr::num(next().number);
        if (isSymbol("(")) {
            next();
            ExprPtr e = expression();
            expectSymbol(")");
            return e;
        }
        if (isIdent("sqrt")) {
            next();
            expectSymbol("(");
            ExprPtr e = expression();
            expectSymbol(")");
            return Expr::sqrt(std::move(e));
        }
        if (peek().kind != Tok::Ident)
            err("expected expression");
        std::string name = next().text;
        if (isSymbol("[")) {
            std::vector<ExprPtr> indices;
            while (isSymbol("[")) {
                next();
                indices.push_back(expression());
                expectSymbol("]");
            }
            return Expr::access(std::move(name), std::move(indices));
        }
        return Expr::var(std::move(name));
    }
};

} // namespace

Program
parse(const std::string &source)
{
    return DahliaParser(source).parse();
}

} // namespace calyx::dahlia
