#include "frontends/dahlia/lexer.h"

#include <cctype>

#include "support/error.h"

namespace calyx::dahlia {

std::vector<Token>
tokenize(const std::string &src)
{
    std::vector<Token> out;
    size_t pos = 0;
    int line = 1;

    auto push = [&out, &line](Tok kind, std::string text,
                              uint64_t number = 0) {
        Token t;
        t.kind = kind;
        t.text = std::move(text);
        t.number = number;
        t.line = line;
        out.push_back(std::move(t));
    };

    while (pos < src.size()) {
        char c = src[pos];
        if (c == '\n') {
            ++line;
            ++pos;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++pos;
            continue;
        }
        if (c == '/' && pos + 1 < src.size() && src[pos + 1] == '/') {
            while (pos < src.size() && src[pos] != '\n')
                ++pos;
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            size_t start = pos;
            while (pos < src.size() &&
                   (std::isalnum(static_cast<unsigned char>(src[pos])) ||
                    src[pos] == '_')) {
                ++pos;
            }
            push(Tok::Ident, src.substr(start, pos - start));
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            uint64_t v = 0;
            while (pos < src.size() &&
                   std::isdigit(static_cast<unsigned char>(src[pos]))) {
                v = v * 10 + (src[pos] - '0');
                ++pos;
            }
            push(Tok::Number, std::to_string(v), v);
            continue;
        }
        // Multi-character operators (longest match first).
        static const char *three_char[] = {"---"};
        static const char *two_char[] = {":=", "..", "<<", ">>", "==",
                                         "!=", "<=", ">=", "&&", "||"};
        bool matched = false;
        for (const char *s : three_char) {
            if (src.compare(pos, 3, s) == 0) {
                push(Tok::Symbol, s);
                pos += 3;
                matched = true;
                break;
            }
        }
        if (matched)
            continue;
        for (const char *s : two_char) {
            if (src.compare(pos, 2, s) == 0) {
                push(Tok::Symbol, s);
                pos += 2;
                matched = true;
                break;
            }
        }
        if (matched)
            continue;
        static const std::string singles = "()[]{}<>=+-*/%;:,.&|^!";
        if (singles.find(c) != std::string::npos) {
            push(Tok::Symbol, std::string(1, c));
            ++pos;
            continue;
        }
        fatal("dahlia: unexpected character '", std::string(1, c),
              "' at line ", line);
    }
    push(Tok::End, "<eof>");
    return out;
}

} // namespace calyx::dahlia
