#include "frontends/dahlia/codegen.h"

#include <set>

#include "frontends/dahlia/checker.h"
#include "frontends/dahlia/lowering.h"
#include "ir/builder.h"
#include "support/error.h"

namespace calyx::dahlia {

namespace {

/** Width of an operation over operand widths; 0 means "flexible". */
Width
joinWidth(Width a, Width b)
{
    return a > b ? a : b;
}

/** Fold a binary operation the way the hardware computes it. */
uint64_t
foldOp(BinOp op, uint64_t a, uint64_t b, Width w)
{
    uint64_t v = 0;
    switch (op) {
      case BinOp::Add:
        v = a + b;
        break;
      case BinOp::Sub:
        v = a - b;
        break;
      case BinOp::Mul:
        v = a * b;
        break;
      case BinOp::Div:
        v = b == 0 ? ~uint64_t(0) : a / b;
        break;
      case BinOp::Mod:
        v = b == 0 ? a : a % b;
        break;
      case BinOp::Lsh:
        v = b >= 64 ? 0 : a << b;
        break;
      case BinOp::Rsh:
        v = b >= 64 ? 0 : a >> b;
        break;
      case BinOp::And:
        v = a & b;
        break;
      case BinOp::Or:
        v = a | b;
        break;
      case BinOp::Xor:
        v = a ^ b;
        break;
      case BinOp::Lt:
        return a < b;
      case BinOp::Gt:
        return a > b;
      case BinOp::Le:
        return a <= b;
      case BinOp::Ge:
        return a >= b;
      case BinOp::Eq:
        return a == b;
      case BinOp::Ne:
        return a != b;
    }
    return truncate(v, w == 0 ? 64 : w);
}

const char *
combPrim(BinOp op)
{
    switch (op) {
      case BinOp::Add:
        return "std_add";
      case BinOp::Sub:
        return "std_sub";
      case BinOp::Lsh:
        return "std_lsh";
      case BinOp::Rsh:
        return "std_rsh";
      case BinOp::And:
        return "std_and";
      case BinOp::Or:
        return "std_or";
      case BinOp::Xor:
        return "std_xor";
      case BinOp::Lt:
        return "std_lt";
      case BinOp::Gt:
        return "std_gt";
      case BinOp::Le:
        return "std_le";
      case BinOp::Ge:
        return "std_ge";
      case BinOp::Eq:
        return "std_eq";
      case BinOp::Ne:
        return "std_neq";
      default:
        panic("combPrim on sequential op");
    }
}

/** Read/write summary of a lowered statement (for `;` parallelism). */
struct RwSets
{
    std::set<std::string> regReads, regWrites;
    std::set<std::string> memUses; // any access counts (shared ports)
    std::set<std::string> memWrites;
};

void
exprRw(const Expr &e, RwSets &rw)
{
    switch (e.kind) {
      case Expr::Kind::Num:
        return;
      case Expr::Kind::Var:
        rw.regReads.insert(e.name);
        return;
      case Expr::Kind::Access:
        rw.memUses.insert(e.name);
        for (const auto &i : e.indices)
            exprRw(*i, rw);
        return;
      case Expr::Kind::Bin:
        exprRw(*e.lhs, rw);
        exprRw(*e.rhs, rw);
        return;
      case Expr::Kind::Sqrt:
        exprRw(*e.lhs, rw);
        return;
    }
}

void
stmtRw(const Stmt &s, RwSets &rw)
{
    switch (s.kind) {
      case Stmt::Kind::Let:
        if (s.init)
            exprRw(*s.init, rw);
        rw.regWrites.insert(s.name);
        return;
      case Stmt::Kind::Assign:
        exprRw(*s.rhs, rw);
        if (s.lval->kind == Expr::Kind::Var) {
            rw.regWrites.insert(s.lval->name);
        } else {
            rw.memUses.insert(s.lval->name);
            rw.memWrites.insert(s.lval->name);
            for (const auto &i : s.lval->indices)
                exprRw(*i, rw);
        }
        return;
      case Stmt::Kind::If:
        exprRw(*s.cond, rw);
        stmtRw(*s.body, rw);
        if (s.elseBody)
            stmtRw(*s.elseBody, rw);
        return;
      case Stmt::Kind::While:
        exprRw(*s.cond, rw);
        stmtRw(*s.body, rw);
        return;
      case Stmt::Kind::For:
        panic("codegen on un-lowered For");
      case Stmt::Kind::SeqComp:
      case Stmt::Kind::ParComp:
        for (const auto &c : s.stmts)
            stmtRw(*c, rw);
        return;
    }
}

bool
independent(const RwSets &a, const RwSets &b)
{
    auto intersects = [](const std::set<std::string> &x,
                         const std::set<std::string> &y) {
        for (const auto &v : x) {
            if (y.count(v))
                return true;
        }
        return false;
    };
    // Register dependences always serialize. Memory sharing is decided
    // separately (read-only sharing uses the second BRAM port).
    if (intersects(a.regWrites, b.regWrites))
        return false;
    if (intersects(a.regWrites, b.regReads))
        return false;
    if (intersects(a.regReads, b.regWrites))
        return false;
    return true;
}

class Codegen
{
  public:
    explicit Codegen(const Program &p) : prog(p) {}

    Context
    run()
    {
        Component &main = ctx.addComponent("main");
        comp = &main;

        for (const auto &d : prog.decls) {
            std::vector<uint64_t> params;
            if (d.type.dims.size() == 1) {
                params = {d.type.width, d.type.dims[0],
                          bitsNeeded(d.type.dims[0] - 1)};
                comp->addCell(d.name, "std_mem_d1", params, ctx)
                    .attrs()
                    .set(Attributes::externalAttr, 1);
            } else if (d.type.dims.size() == 2) {
                params = {d.type.width, d.type.dims[0], d.type.dims[1],
                          bitsNeeded(d.type.dims[0] - 1),
                          bitsNeeded(d.type.dims[1] - 1)};
                comp->addCell(d.name, "std_mem_d2", params, ctx)
                    .attrs()
                    .set(Attributes::externalAttr, 1);
            } else {
                fatal("dahlia codegen: bad memory rank for ", d.name);
            }
            mems[d.name] = d.type;
        }

        ControlPtr body = stmt(*prog.body);
        comp->setControl(std::move(body));
        return std::move(ctx);
    }

  private:
    const Program &prog;
    Context ctx;
    Component *comp = nullptr;
    std::map<std::string, Type> mems;
    std::map<std::string, Width> scalars;
    /** Preferred read port per memory for the parallel arm being
     *  compiled (set by ParComp when two arms share a read-only
     *  memory through the two BRAM ports). */
    std::map<std::string, int> lanePort;

    /** A compiled expression value: a port (or constant) plus width. */
    struct Val
    {
        bool isConst = false;
        uint64_t cval = 0;
        PortRef port;
        Width width = 0; ///< 0 = flexible constant
    };

    /** Context while filling one group with combinational logic. */
    struct GroupCtx
    {
        Group *g = nullptr;
        /// Memory read ports this group already drives ("name#port").
        std::set<std::string> memsRead;
        /// Memories whose write port (port 0) is reserved here.
        std::set<std::string> blocked;
        /// Sequential pre-steps emitted so far (control to run before).
        std::vector<ControlPtr> *pre = nullptr;
    };

    static ControlPtr
    wrapSeq(std::vector<ControlPtr> steps)
    {
        if (steps.empty())
            return std::make_unique<Empty>();
        if (steps.size() == 1)
            return std::move(steps[0]);
        return std::make_unique<Seq>(std::move(steps));
    }

    /** Adapt a value to an exact width inside group `g`. Constants and
     *  wider ports truncate, mirroring hardware slicing. */
    PortRef
    fit(const Val &v, Width target, Group &g)
    {
        if (v.isConst)
            return constant(truncate(v.cval, target), target);
        if (v.width == target)
            return v.port;
        const char *prim = v.width < target ? "std_pad" : "std_slice";
        std::string name =
            comp->uniqueName(v.width < target ? "pad" : "slc");
        comp->addCell(name, prim, {v.width, target}, ctx);
        g.add(cellPort(name, "in"), v.port);
        return cellPort(name, "out");
    }

    /** Resolved operation width for two operand values. */
    static Width
    opWidth(const Val &l, const Val &r)
    {
        Width w = joinWidth(l.width, r.width);
        if (l.isConst)
            w = joinWidth(w, bitsNeeded(l.cval));
        if (r.isConst)
            w = joinWidth(w, bitsNeeded(r.cval));
        if (w == 0)
            w = 32;
        return w;
    }

    Val
    evalExpr(const Expr &e, GroupCtx &gc)
    {
        switch (e.kind) {
          case Expr::Kind::Num: {
            Val v;
            v.isConst = true;
            v.cval = e.value;
            v.width = 0;
            return v;
          }
          case Expr::Kind::Var: {
            auto it = scalars.find(e.name);
            if (it == scalars.end())
                fatal("dahlia codegen: unknown variable ", e.name);
            Val v;
            v.port = cellPort(e.name, "out");
            v.width = it->second;
            return v;
          }
          case Expr::Kind::Access:
            return readMemory(e, gc);
          case Expr::Kind::Bin:
            return evalBin(e, gc);
          case Expr::Kind::Sqrt: {
            // Materialize: sqrt has data-dependent latency (no static).
            std::string cell = comp->uniqueName("sqrt");
            comp->addCell(cell, "std_sqrt", {32}, ctx);
            std::string tmp = comp->uniqueName("t_sqrt");
            comp->addCell(tmp, "std_reg", {32}, ctx);
            Group &g = comp->addGroup(comp->uniqueName("do_sqrt"));
            GroupCtx inner{&g, {}, gc.blocked, gc.pre};
            Val arg = evalExpr(*e.lhs, inner);
            g.add(cellPort(cell, "in"), fit(arg, 32, g));
            g.add(cellPort(cell, "go"), constant(1, 1),
                  Guard::negate(
                      Guard::fromPort(cellPort(cell, "done"))));
            g.add(cellPort(tmp, "in"), cellPort(cell, "out"),
                  Guard::fromPort(cellPort(cell, "done")));
            g.add(cellPort(tmp, "write_en"), constant(1, 1),
                  Guard::fromPort(cellPort(cell, "done")));
            g.add(g.doneHole(), cellPort(tmp, "done"));
            gc.pre->push_back(std::make_unique<Enable>(g.name()));
            Val v;
            v.port = cellPort(tmp, "out");
            v.width = 32;
            return v;
          }
        }
        panic("bad expr kind");
    }

    /** Evaluate a constant subtree without side effects. */
    std::optional<Val>
    tryFold(const Expr &e) const
    {
        if (e.kind == Expr::Kind::Num) {
            Val v;
            v.isConst = true;
            v.cval = e.value;
            v.width = 0;
            return v;
        }
        if (e.kind != Expr::Kind::Bin)
            return std::nullopt;
        auto l = tryFold(*e.lhs);
        auto r = tryFold(*e.rhs);
        if (!l || !r)
            return std::nullopt;
        Val v;
        v.isConst = true;
        v.width = joinWidth(l->width, r->width);
        v.cval = foldOp(e.op, l->cval, r->cval, v.width);
        return v;
    }

    Val
    evalBin(const Expr &e, GroupCtx &gc)
    {
        if (auto folded = tryFold(e))
            return *folded;

        if (isSequentialOp(e.op)) {
            // Dedicated group computing into a temporary register, with
            // a "static" annotation (§6.2: multiplies take four cycles).
            // Operands are evaluated inside the op group so they stay
            // stable for the whole multi-cycle operation.
            Group &g = comp->addGroup(comp->uniqueName(
                e.op == BinOp::Mul ? "do_mul" : "do_div"));
            GroupCtx inner{&g, {}, gc.blocked, gc.pre};
            Val li = evalExpr(*e.lhs, inner);
            Val ri = evalExpr(*e.rhs, inner);
            Width w = opWidth(li, ri);
            const char *prim = e.op == BinOp::Mul ? "std_mult_pipe"
                                                  : "std_div_pipe";
            const char *out_port =
                e.op == BinOp::Mul
                    ? "out"
                    : (e.op == BinOp::Div ? "out_quotient"
                                          : "out_remainder");
            std::string cell = comp->uniqueName(
                e.op == BinOp::Mul ? "mul" : "div");
            comp->addCell(cell, prim, {w}, ctx);
            std::string tmp = comp->uniqueName("t_op");
            comp->addCell(tmp, "std_reg", {w}, ctx);
            g.add(cellPort(cell, "left"), fit(li, w, g));
            g.add(cellPort(cell, "right"), fit(ri, w, g));
            g.add(cellPort(cell, "go"), constant(1, 1),
                  Guard::negate(
                      Guard::fromPort(cellPort(cell, "done"))));
            g.add(cellPort(tmp, "in"), cellPort(cell, out_port),
                  Guard::fromPort(cellPort(cell, "done")));
            g.add(cellPort(tmp, "write_en"), constant(1, 1),
                  Guard::fromPort(cellPort(cell, "done")));
            g.add(g.doneHole(), cellPort(tmp, "done"));
            int64_t latency =
                (e.op == BinOp::Mul ? multLatency : divLatency) + 1;
            g.attrs().set(Attributes::staticAttr, latency);
            gc.pre->push_back(std::make_unique<Enable>(g.name()));
            Val v;
            v.port = cellPort(tmp, "out");
            v.width = w;
            return v;
        }

        // Combinational operator cell.
        Val l = evalExpr(*e.lhs, gc);
        Val r = evalExpr(*e.rhs, gc);
        Width w = opWidth(l, r);
        std::string cell =
            comp->uniqueName(std::string(combPrim(e.op)).substr(4));
        comp->addCell(cell, combPrim(e.op), {w}, ctx);
        Group &g = *gc.g;
        g.add(cellPort(cell, "left"), fit(l, w, g));
        g.add(cellPort(cell, "right"), fit(r, w, g));
        Val v;
        v.port = cellPort(cell, "out");
        v.width = isComparison(e.op) ? 1 : w;
        return v;
    }

    /** Memory rank helper: address ports and their widths. */
    struct MemPorts
    {
        std::vector<std::string> addr;
        std::vector<Width> addrWidth;
        std::string readData;
    };

    MemPorts
    memPorts(const std::string &name, int port) const
    {
        const Type &t = mems.at(name);
        MemPorts p;
        std::string suffix = port == 1 ? "_1" : "";
        if (t.dims.size() == 1) {
            p.addr = {"addr0" + suffix};
            p.addrWidth = {bitsNeeded(t.dims[0] - 1)};
        } else {
            p.addr = {"addr0" + suffix, "addr1" + suffix};
            p.addrWidth = {bitsNeeded(t.dims[0] - 1),
                           bitsNeeded(t.dims[1] - 1)};
        }
        p.readData = "read_data" + suffix;
        return p;
    }

    /**
     * Pick a free read port for `mem` in this group: the lane-preferred
     * port first, then the other one. Port 0 is unavailable while the
     * memory is a store target (its address lines carry the write
     * address). Returns -1 when both ports are taken.
     */
    int
    pickReadPort(const std::string &mem, const GroupCtx &gc) const
    {
        int preferred = 0;
        auto lp = lanePort.find(mem);
        if (lp != lanePort.end())
            preferred = lp->second;
        for (int port : {preferred, 1 - preferred}) {
            if (port == 0 && gc.blocked.count(mem))
                continue;
            if (gc.memsRead.count(mem + "#" + std::to_string(port)))
                continue;
            return port;
        }
        return -1;
    }

    Val
    readMemory(const Expr &e, GroupCtx &gc)
    {
        auto it = mems.find(e.name);
        if (it == mems.end())
            fatal("dahlia codegen: unknown memory ", e.name);
        int port = pickReadPort(e.name, gc);
        if (port < 0) {
            // Both read ports are taken: materialize the read into a
            // temporary register as a pre-step.
            std::string tmp = comp->uniqueName("t_rd");
            comp->addCell(tmp, "std_reg", {it->second.width}, ctx);
            Group &g = comp->addGroup(comp->uniqueName("rd"));
            GroupCtx inner{&g, {}, {}, gc.pre};
            int inner_port = pickReadPort(e.name, inner);
            MemPorts p = memPorts(e.name, inner_port);
            driveAddress(e, inner, inner_port);
            g.add(cellPort(tmp, "in"), cellPort(e.name, p.readData));
            g.add(cellPort(tmp, "write_en"), constant(1, 1));
            g.add(g.doneHole(), cellPort(tmp, "done"));
            g.attrs().set(Attributes::staticAttr, 1);
            gc.pre->push_back(std::make_unique<Enable>(g.name()));
            Val v;
            v.port = cellPort(tmp, "out");
            v.width = it->second.width;
            return v;
        }
        driveAddress(e, gc, port);
        gc.memsRead.insert(e.name + "#" + std::to_string(port));
        Val v;
        v.port = cellPort(e.name, memPorts(e.name, port).readData);
        v.width = it->second.width;
        return v;
    }

    void
    driveAddress(const Expr &e, GroupCtx &gc, int port)
    {
        MemPorts p = memPorts(e.name, port);
        for (size_t d = 0; d < e.indices.size(); ++d) {
            Val idx = evalExpr(*e.indices[d], gc);
            gc.g->add(cellPort(e.name, p.addr[d]),
                      fit(idx, p.addrWidth[d], *gc.g));
        }
    }

    /** Compile `reg := expr` into pre-steps plus one update group. */
    ControlPtr
    regWrite(const std::string &reg, Width width, const Expr *value)
    {
        std::vector<ControlPtr> pre;
        Group &g = comp->addGroup(comp->uniqueName("upd"));
        GroupCtx gc{&g, {}, {}, &pre};
        Val v;
        if (value) {
            v = evalExpr(*value, gc);
        } else {
            v.isConst = true;
            v.cval = 0;
        }
        g.add(cellPort(reg, "in"), fit(v, width, g));
        g.add(cellPort(reg, "write_en"), constant(1, 1));
        g.add(g.doneHole(), cellPort(reg, "done"));
        g.attrs().set(Attributes::staticAttr, 1);
        pre.push_back(std::make_unique<Enable>(g.name()));
        return wrapSeq(std::move(pre));
    }

    /** Compile a condition into (pre-steps, 1-bit port, comb group). */
    struct CondParts
    {
        std::vector<ControlPtr> pre;
        PortRef port;
        std::string group;
    };

    CondParts
    compileCond(const Expr &cond)
    {
        CondParts parts;
        Group &g = comp->addGroup(comp->uniqueName("cond"));
        GroupCtx gc{&g, {}, {}, &parts.pre};
        Val v = evalExpr(cond, gc);
        if (v.isConst) {
            // Constant condition: route through a 1-bit comparator so
            // control still has a port to read.
            std::string cell = comp->uniqueName("const_cond");
            comp->addCell(cell, "std_eq", {1}, ctx);
            g.add(cellPort(cell, "left"),
                  constant(v.cval != 0 ? 1 : 0, 1));
            g.add(cellPort(cell, "right"), constant(1, 1));
            parts.port = cellPort(cell, "out");
        } else if (v.width == 1) {
            parts.port = v.port;
        } else {
            std::string cell = comp->uniqueName("nz");
            comp->addCell(cell, "std_neq", {v.width}, ctx);
            g.add(cellPort(cell, "left"), v.port);
            g.add(cellPort(cell, "right"), constant(0, v.width));
            parts.port = cellPort(cell, "out");
        }
        g.add(g.doneHole(), constant(1, 1));
        parts.group = g.name();
        return parts;
    }

    ControlPtr
    stmt(const Stmt &s)
    {
        switch (s.kind) {
          case Stmt::Kind::Let: {
            if (scalars.count(s.name))
                fatal("dahlia codegen: duplicate register ", s.name);
            scalars[s.name] = s.type.width;
            comp->addCell(s.name, "std_reg", {s.type.width}, ctx);
            return regWrite(s.name, s.type.width, s.init.get());
          }
          case Stmt::Kind::Assign: {
            if (s.lval->kind == Expr::Kind::Var) {
                auto it = scalars.find(s.lval->name);
                if (it == scalars.end())
                    fatal("dahlia codegen: unknown variable ",
                          s.lval->name);
                return regWrite(s.lval->name, it->second, s.rhs.get());
            }
            // Memory store (write port is always port 0).
            const std::string &mem = s.lval->name;
            std::vector<ControlPtr> pre;
            Group &g = comp->addGroup(comp->uniqueName("st"));
            GroupCtx gc{&g, {}, {mem}, &pre};
            Val v = evalExpr(*s.rhs, gc);
            driveAddress(*s.lval, gc, 0);
            g.add(cellPort(mem, "write_data"),
                  fit(v, mems.at(mem).width, g));
            g.add(cellPort(mem, "write_en"), constant(1, 1));
            g.add(g.doneHole(), cellPort(mem, "done"));
            g.attrs().set(Attributes::staticAttr, 1);
            pre.push_back(std::make_unique<Enable>(g.name()));
            return wrapSeq(std::move(pre));
          }
          case Stmt::Kind::If: {
            CondParts cond = compileCond(*s.cond);
            ControlPtr t = stmt(*s.body);
            ControlPtr f = s.elseBody ? stmt(*s.elseBody)
                                      : std::make_unique<Empty>();
            ControlPtr node = std::make_unique<If>(
                cond.port, cond.group, std::move(t), std::move(f));
            std::vector<ControlPtr> steps = std::move(cond.pre);
            steps.push_back(std::move(node));
            return wrapSeq(std::move(steps));
          }
          case Stmt::Kind::While: {
            CondParts cond = compileCond(*s.cond);
            ControlPtr body = stmt(*s.body);
            if (!cond.pre.empty()) {
                // Sequential work inside the condition re-runs after
                // every iteration.
                std::vector<ControlPtr> repeated;
                repeated.push_back(std::move(body));
                for (const auto &c : cond.pre)
                    repeated.push_back(c->clone());
                body = wrapSeq(std::move(repeated));
            }
            ControlPtr node = std::make_unique<While>(
                cond.port, cond.group, std::move(body));
            std::vector<ControlPtr> steps = std::move(cond.pre);
            steps.push_back(std::move(node));
            return wrapSeq(std::move(steps));
          }
          case Stmt::Kind::For:
            fatal("dahlia codegen: For must be lowered first");
          case Stmt::Kind::SeqComp: {
            std::vector<ControlPtr> steps;
            for (const auto &c : s.stmts)
                steps.push_back(stmt(*c));
            return wrapSeq(std::move(steps));
          }
          case Stmt::Kind::ParComp: {
            // Unordered composition: parallel when independent
            // (paper §6.2 "preserving data flow"). Registers must be
            // disjoint; memories may be shared read-only by up to two
            // arms through the two BRAM read ports.
            size_t n = s.stmts.size();
            std::vector<RwSets> rw(n);
            for (size_t i = 0; i < n; ++i)
                stmtRw(*s.stmts[i], rw[i]);

            bool parallel = true;
            for (size_t i = 0; i < n && parallel; ++i) {
                for (size_t j = i + 1; j < n; ++j) {
                    if (!independent(rw[i], rw[j])) {
                        parallel = false;
                        break;
                    }
                }
            }
            // Shared read-only memories: count the arms touching each.
            std::map<std::string, std::vector<size_t>> mem_users;
            if (parallel) {
                for (size_t i = 0; i < n; ++i)
                    for (const auto &m : rw[i].memUses)
                        mem_users[m].push_back(i);
                for (const auto &[m, users] : mem_users) {
                    if (users.size() < 2)
                        continue;
                    bool written = false;
                    for (size_t i : users)
                        written = written || rw[i].memWrites.count(m);
                    if (written || users.size() > 2) {
                        parallel = false;
                        break;
                    }
                }
            }

            std::vector<ControlPtr> steps;
            for (size_t i = 0; i < n; ++i) {
                std::map<std::string, int> saved = lanePort;
                if (parallel) {
                    for (const auto &[m, users] : mem_users) {
                        if (users.size() == 2 && users[1] == i)
                            lanePort[m] = 1;
                    }
                }
                steps.push_back(stmt(*s.stmts[i]));
                lanePort = std::move(saved);
            }
            if (!parallel)
                return wrapSeq(std::move(steps));
            if (steps.size() == 1)
                return std::move(steps[0]);
            return std::make_unique<Par>(std::move(steps));
        }
        }
        panic("bad stmt kind");
    }
};

} // namespace

Context
codegen(const Program &lowered)
{
    return Codegen(lowered).run();
}

Context
compileDahlia(const Program &program)
{
    check(program);
    Program lowered = lower(program);
    return codegen(lowered);
}

} // namespace calyx::dahlia
