#ifndef CALYX_SIM_ENV_H
#define CALYX_SIM_ENV_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/context.h"
#include "sim/models.h"

namespace calyx::sim {

/**
 * A compiled guard expression: the source Guard tree flattened to a
 * postorder array evaluated with a value stack. Port references are
 * resolved to flat port ids.
 */
struct SExpr
{
    enum class Op : uint8_t {
        True,
        Port,  ///< push vals[a]
        Not,
        And,
        Or,
        Eq,
        Neq,
        Lt,
        Gt,
        Leq,
        Geq,
    };

    struct Node
    {
        Op op = Op::True;
        uint32_t a = 0, b = 0;     ///< Port ids for Port/Cmp leaves.
        uint64_t immA = 0, immB = 0;
        bool aImm = false, bImm = false;
    };

    std::vector<Node> nodes; ///< Empty means "always true".

    bool eval(const uint64_t *vals) const;
};

/** A compiled assignment. */
struct SAssign
{
    uint32_t dst = 0;
    SExpr guard;
    bool srcConst = false;
    uint32_t srcPort = 0;
    uint64_t srcValue = 0;
    uint32_t id = 0;    ///< Index into SimProgram::assignDescs.
};

/**
 * The flattened form of a Calyx program prepared for simulation: every
 * component instance is recursively inlined, ports get dense ids, and
 * assignments/guards are compiled. Shared by the control interpreter
 * (pre-compilation programs) and the cycle simulator (lowered programs).
 */
class SimProgram
{
  public:
    struct Instance
    {
        std::string path;        ///< "" for top, "pe00/" style prefix.
        const Component *comp = nullptr;
        std::vector<SAssign> continuous;
        /// Group name -> compiled assignments.
        std::map<std::string, std::vector<SAssign>> groups;
        /// Group name -> (go hole id, done hole id).
        std::map<std::string, std::pair<uint32_t, uint32_t>> holes;
        uint32_t goPort = 0, donePort = 0; ///< This-instance go/done ids.
        std::vector<std::unique_ptr<Instance>> subs;
    };

    SimProgram(const Context &ctx, const std::string &top);

    const Instance &root() const { return *rootInst; }
    size_t numPorts() const { return portNames.size(); }

    /** Flat id for a hierarchical port path, e.g. "pe00/r0.out". */
    uint32_t portId(const std::string &path) const;
    const std::string &portName(uint32_t id) const { return portNames[id]; }

    /** Model for a hierarchical cell path, e.g. "A0" or "pe00/acc". */
    PrimModel *findModel(const std::string &cell_path) const;

    const std::vector<std::unique_ptr<PrimModel>> &models() const
    {
        return modelList;
    }

    /** Human-readable description of assignment `id` (diagnostics). */
    const std::string &assignDesc(uint32_t id) const
    {
        return assignDescs[id];
    }

    const Context &context() const { return *ctx; }

  private:
    friend class SimState;

    void buildInstance(Instance &inst, const Component &comp);
    uint32_t addPort(const std::string &path);
    SAssign compileAssign(const Instance &inst, const Assignment &a);
    SExpr compileGuard(const Instance &inst, const GuardPtr &g);
    uint32_t resolve(const Instance &inst, const PortRef &ref);

    const Context *ctx;
    std::unique_ptr<Instance> rootInst;
    std::vector<std::string> portNames;
    std::map<std::string, uint32_t> portIds;
    std::vector<std::unique_ptr<PrimModel>> modelList;
    std::map<std::string, PrimModel *> modelIndex;
    std::vector<std::string> assignDescs;
};

/**
 * Mutable per-run simulation state: port values plus the combinational
 * fixpoint engine. Callers select the active assignment set each cycle
 * (continuous only for compiled programs; continuous + active groups for
 * the interpreter), then alternate comb() and clock().
 */
class SimState
{
  public:
    explicit SimState(const SimProgram &prog);

    /** Reset all models and values. */
    void reset();

    /** Clear the active assignment set (start of cycle assembly). */
    void beginCycle();

    /** Activate a set of assignments for this cycle. */
    void activate(const std::vector<SAssign> &assigns);

    /** Force a port to a value (interpreter-driven signals). */
    void force(uint32_t port, uint64_t value);

    /**
     * Run the combinational fixpoint for this cycle. Throws Error on
     * multiple active drivers or failure to converge (combinational
     * loop). Returns the number of Jacobi passes used.
     */
    int comb();

    /** Advance all sequential primitives one clock edge. */
    void clock();

    uint64_t value(uint32_t port) const { return vals[port]; }
    uint64_t value(const std::string &path) const
    {
        return vals[prog->portId(path)];
    }

    const SimProgram &program() const { return *prog; }

  private:
    const SimProgram *prog;
    std::vector<uint64_t> vals, tmp;
    std::vector<const SAssign *> active;
    std::vector<std::pair<uint32_t, uint64_t>> forces;
    std::vector<int32_t> driver; // scratch for conflict detection
};

/** Maximum Jacobi passes before declaring a combinational loop. */
constexpr int maxCombPasses = 256;

} // namespace calyx::sim

#endif // CALYX_SIM_ENV_H
