#ifndef CALYX_SIM_ENV_H
#define CALYX_SIM_ENV_H

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/context.h"
#include "sim/models.h"
#include "support/symbol.h"

namespace calyx::obs {
class SimObserver;
}

namespace calyx::sim {

class SimSchedule;
class CompiledModule;
struct PartitionPlan;
class PartitionRunner;

/**
 * Combinational evaluation engine selection (see docs/simulation.md).
 *
 *  - Jacobi: the original reference engine. Every comb() pass zero-fills
 *    a scratch vector, re-evaluates every model and active assignment,
 *    and iterates to a fixed point. O(depth x (ports + assigns)) per
 *    cycle, but trivially correct; kept forever as the oracle.
 *  - Levelized: statically scheduled event-driven engine. A port-level
 *    dependency graph over all potential drivers is SCC-condensed and
 *    topologically ordered once per program; each cycle walks only the
 *    dirty cone of that schedule.
 *  - Compiled: verilator-style compiled simulation. The levelized
 *    schedule is code-generated as straight-line C++ (emit/cppsim.h),
 *    built with the host toolchain, and dlopen()ed (sim/compiled.h).
 *    Requires fully-lowered programs and a host C++ compiler.
 */
enum class Engine { Jacobi, Levelized, Compiled };

/** Registry row for one engine: drives parsing, benches, and docs. */
struct EngineInfo
{
    Engine engine;
    const char *name;
    const char *description;
};

/** Every engine, in declaration order. The single source of truth the
 * parser, the bench harness, and the tests enumerate. */
const std::vector<EngineInfo> &engineInfos();

/** All engine names, in declaration order. */
std::vector<std::string> engineNames();

/** "jacobi" / "levelized" / "compiled". */
const char *engineName(Engine engine);

/** Parse an engine name; fatal() with the valid options and a
 * did-you-mean suggestion on a miss. */
Engine parseEngine(const std::string &name);

/**
 * A compiled guard expression: the source Guard tree flattened to a
 * postorder array evaluated with a value stack. Port references are
 * resolved to flat port ids.
 */
struct SExpr
{
    enum class Op : uint8_t {
        True,
        Port,  ///< push vals[a]
        Not,
        And,
        Or,
        Eq,
        Neq,
        Lt,
        Gt,
        Leq,
        Geq,
    };

    struct Node
    {
        Op op = Op::True;
        uint32_t a = 0, b = 0;     ///< Port ids for Port/Cmp leaves.
        uint64_t immA = 0, immB = 0;
        bool aImm = false, bImm = false;
    };

    std::vector<Node> nodes; ///< Empty means "always true".

    /**
     * Maximum value-stack depth eval() can reach, computed when the
     * guard is compiled. Guards deeper than the inline scratch buffer
     * fall back to heap-sized storage instead of overflowing it.
     */
    uint32_t depth = 0;

    bool eval(const uint64_t *vals) const;

    /** Recompute `depth` from `nodes` (called after compilation). */
    void computeDepth();

    /** Append every port id the guard reads to `ports`. */
    void collectPorts(std::vector<uint32_t> &ports) const;

  private:
    bool evalWith(const uint64_t *vals, uint64_t *stack) const;
};

/** Inline eval stack size; deeper guards use heap scratch. */
constexpr uint32_t sexprInlineDepth = 64;

/** A compiled assignment. */
struct SAssign
{
    uint32_t dst = 0;
    SExpr guard;
    bool srcConst = false;
    uint32_t srcPort = 0;
    uint64_t srcValue = 0;
    uint32_t id = 0;    ///< Index into SimProgram::assignDescs.
};

/**
 * The flattened form of a Calyx program prepared for simulation: every
 * component instance is recursively inlined, ports get dense ids, and
 * assignments/guards are compiled. Shared by the control interpreter
 * (pre-compilation programs) and the cycle simulator (lowered programs).
 */
class SimProgram
{
  public:
    struct Instance
    {
        std::string path;        ///< "" for top, "pe00/" style prefix.
        const Component *comp = nullptr;
        std::vector<SAssign> continuous;
        /// Per-group data indexed by dense group id (declaration order);
        /// the symbol map exists only for one-time name resolution.
        std::vector<Symbol> groupNames;
        std::vector<std::vector<SAssign>> groupAssigns;
        /// (go hole id, done hole id) per group id.
        std::vector<std::pair<uint32_t, uint32_t>> groupHoles;
        std::unordered_map<Symbol, uint32_t> groupIndex;
        uint32_t goPort = 0, donePort = 0; ///< This-instance go/done ids.
        std::vector<std::unique_ptr<Instance>> subs;

        bool hasGroups() const { return !groupAssigns.empty(); }

        /** Dense id for a group name; fatal() on a miss. */
        uint32_t groupId(Symbol name) const;
    };

    SimProgram(const Context &ctx, Symbol top);
    ~SimProgram();

    const Instance &root() const { return *rootInst; }
    size_t numPorts() const { return portNames.size(); }

    /** Flat id for a hierarchical port path, e.g. "pe00/r0.out".
     * fatal() with a did-you-mean suggestion on a miss. */
    uint32_t portId(Symbol path) const;
    const std::string &portName(uint32_t id) const
    {
        return portNames[id].str();
    }

    /** Model for a hierarchical cell path, e.g. "A0" or "pe00/acc".
     * fatal() with a did-you-mean suggestion on a miss. */
    PrimModel *findModel(Symbol cell_path) const;

    /** True when any instance (top or nested) still has groups, i.e.
     * the program needs the control interpreter rather than CycleSim. */
    bool hasGroups() const;

    const std::vector<std::unique_ptr<PrimModel>> &models() const
    {
        return modelList;
    }

    /** Hierarchical cell path of each models() entry, in order. */
    std::vector<Symbol> modelPaths() const;

    /**
     * A fresh, independent set of primitive models in models() order.
     * The batch runner (sim/batch.h) gives every stimulus lane its own
     * set, so per-lane register/memory/pipeline state lives behind the
     * ordinary PrimModel interface while the program's own models stay
     * untouched.
     */
    std::vector<std::unique_ptr<PrimModel>> newModelSet() const;

    /** Human-readable description of assignment `id` (diagnostics). */
    const std::string &assignDesc(uint32_t id) const
    {
        return assignDescs[id];
    }

    /** Visit every compiled assignment; `continuous` distinguishes
     *  always-active assignments from group ones. */
    void forEachAssignment(
        const std::function<void(const SAssign &, bool continuous)> &fn)
        const;

    /**
     * The levelized evaluation schedule, built on first use and cached.
     * Construction fatal()s when the program contains an unconditional
     * combinational cycle, naming the ports on it.
     */
    const SimSchedule &schedule() const;

    /**
     * The JIT-compiled simulation module for this program, loaded on
     * first use and cached (sim/compiled.h), so every SimState running
     * --sim-engine=compiled over this program shares one module and
     * codegen happens once. fatal() like schedule() on rejection, plus
     * on a missing host toolchain or a failed host compile.
     *
     * The probed variant (`probe = true`) is generated with observer
     * callbacks compiled in (emit/cppsim.h) and cached separately —
     * requesting it never slows down unobserved runs of the plain
     * module, whose hot path stays branch-free.
     *
     * `partitions > 1` requests the partitioned variant instead: one
     * generated function per macro-task plus embedded dependency
     * tables (sim/partition.h), cached in its own slot. Partitioned
     * modules are never probed — observers are notified host-side
     * after the partitions join (see SimState::comb()).
     */
    std::shared_ptr<CompiledModule>
    compiledModule(bool probe = false, uint32_t partitions = 0) const;

    const Context &context() const { return *ctx; }

  private:
    friend class SimState;

    void buildInstance(Instance &inst, const Component &comp);
    uint32_t addPort(Symbol path);
    SAssign compileAssign(const Instance &inst, const Assignment &a);
    SExpr compileGuard(const Instance &inst, const GuardPtr &g);
    uint32_t resolve(const Instance &inst, const PortRef &ref);

    const Context *ctx;
    std::unique_ptr<Instance> rootInst;
    std::vector<Symbol> portNames;
    std::unordered_map<Symbol, uint32_t> portIds;
    std::vector<std::unique_ptr<PrimModel>> modelList;
    std::unordered_map<Symbol, PrimModel *> modelIndex;
    std::vector<std::string> assignDescs;
    mutable std::unique_ptr<SimSchedule> sched; ///< Lazily built.
    /// Lazily loaded generated modules: [0] plain, [1] with probes.
    mutable std::shared_ptr<CompiledModule> compiled[2];
    /// Lazily loaded partitioned module (one per process-stable
    /// partition target; see partitionTarget()).
    mutable std::shared_ptr<CompiledModule> compiledPart;
};

/**
 * Mutable per-run simulation state: port values plus the combinational
 * evaluation engine. Callers select the active assignment set each cycle
 * (continuous only for compiled programs; continuous + active groups for
 * the interpreter), then alternate comb() and clock().
 */
class SimState
{
  public:
    explicit SimState(const SimProgram &prog,
                      Engine engine = Engine::Levelized);
    ~SimState();

    SimState(const SimState &) = delete;
    SimState &operator=(const SimState &) = delete;

    /** Reset all models and values. */
    void reset();

    /** Clear the active assignment set (start of cycle assembly). */
    void beginCycle();

    /** Activate a set of assignments for this cycle. */
    void activate(const std::vector<SAssign> &assigns);

    /** Force a port to a value (interpreter-driven signals). */
    void force(uint32_t port, uint64_t value);

    /**
     * Settle the combinational network for this cycle. Throws Error on
     * multiple active drivers or a combinational loop. Returns the
     * number of Jacobi passes (Jacobi) or node evaluations (Levelized).
     */
    int comb();

    /** Advance all sequential primitives one clock edge. */
    void clock();

    uint64_t value(uint32_t port) const { return vals[port]; }
    uint64_t value(Symbol path) const { return vals[prog->portId(path)]; }

    Engine engine() const { return engineVal; }
    const SimProgram &program() const { return *prog; }

    /**
     * Worker threads for partitioned single-stimulus execution
     * (docs/simulation.md, "Partitioned execution"). With n > 1 the
     * levelized engine walks the full macro-task partition of the
     * schedule every cycle on a static per-thread plan, and the
     * compiled engine loads the partitioned generated module and
     * dispatches its per-partition entry points the same way. n <= 1
     * (the default) keeps the scalar dirty-cone / plain-module paths.
     * Results are bit-identical either way. Call before the first
     * comb(); changing it later rebuilds the plan (and rebinds the
     * compiled instance, losing un-reset state).
     */
    void setThreads(unsigned n);
    unsigned threads() const { return threadsVal; }

    /**
     * Attach an observer (obs/observer.h); not owned, must outlive the
     * state. Every subsequent comb() notifies all observers in
     * attachment order, on every engine. Attach before the first
     * compiled-engine comb(): attaching later reloads the generated
     * module in its probed variant.
     */
    void addObserver(obs::SimObserver *observer);

    const std::vector<obs::SimObserver *> &observers() const
    {
        return observerList;
    }

    /** Cycles settled (comb() calls) since reset, observer-visible. */
    uint64_t settledCycles() const { return cycleIndex; }

    /** Notify observers that the run ended (drivers call this once). */
    void finishObservers(uint64_t cycles);

  private:
    int combJacobi();
    int combLevelized();
    int combCompiled();
    int combPartitioned();

    /** Bind + size the levelized engine state on first use. */
    void bindSchedule();

    /** Build the partition plan/runner/scratch on first use. */
    void ensurePartitioned();

    /** Load/bind the generated module on the first compiled comb(). */
    void ensureCompiled();

    /** fatal() with the module's sticky runtime error, if any. */
    void checkCompiledError();

    /** Run every observer's cycleSettled for the current cycle. */
    void notifySettled();

    /** C callback the probed generated module invokes after eval(). */
    static void probeThunk(void *ctx, const uint64_t *vals);

    /** Settled value of one port under driver priority; see evalPort(). */
    uint64_t evalPort(uint32_t port, bool check_conflicts);

    /** Same, with caller-provided model scratch (partitioned walk:
     * each worker owns a scratch plane, so evalComb never races). */
    uint64_t evalPort(uint32_t port, bool check_conflicts,
                      uint64_t *scratch);

    void markDirty(uint32_t port);
    void markAllDirty();
    void rebuildActiveByPort();
    void diffForces();
    void evalNode(uint32_t node_index);

    /** evalNode without dirty-cone bookkeeping: the partitioned walk
     * evaluates every node each cycle, so fanout marking is dead
     * weight (and would race across workers). */
    void evalNodeFull(uint32_t node_index, uint64_t *scratch);

    const SimProgram *prog;
    Engine engineVal;
    std::vector<uint64_t> vals, tmp;
    std::vector<const SAssign *> active; ///< Jacobi: flat active set.
    std::vector<std::pair<uint32_t, uint64_t>> forces;
    std::vector<int32_t> driver; // scratch for conflict detection

    // --- Levelized engine state -------------------------------------
    const SimSchedule *sched = nullptr; ///< Bound on first comb().

    /// This cycle's activate() calls, by identity. When the sequence
    /// matches the previous cycle's, the per-port active lists are
    /// reused wholesale and no re-scatter or diff happens.
    std::vector<const std::vector<SAssign> *> activationCalls;
    std::vector<const std::vector<SAssign> *> prevActivationCalls;
    bool activationValid = false; ///< False after reset().

    /// Per-port active drivers, double-buffered so a rebuild can diff
    /// against the previous cycle; `touched` lists the non-empty slots.
    std::vector<std::vector<const SAssign *>> activeByPort;
    std::vector<std::vector<const SAssign *>> oldActiveByPort;
    std::vector<uint32_t> touched, oldTouched;

    std::vector<std::pair<uint32_t, uint64_t>> prevForces;
    std::vector<uint64_t> forcedVal;
    std::vector<uint32_t> forcedStamp;
    uint32_t stamp = 0; ///< Incremented every comb().

    /// Event queue: dirty schedule nodes, popped in topological order.
    std::priority_queue<uint32_t, std::vector<uint32_t>,
                        std::greater<uint32_t>> queue;
    std::vector<uint8_t> inQueue;     ///< Per schedule node.
    std::vector<uint8_t> portChanged; ///< Scratch for cyclic nodes.

    // --- Compiled engine state --------------------------------------
    std::shared_ptr<CompiledModule> compiledMod; ///< Shared per digest.
    void *compiledInst = nullptr; ///< This state's generated instance.
    size_t continuousCount = 0;   ///< Total continuous assignments.
    bool compiledProbe = false;   ///< Loaded module notifies observers.

    // --- Partitioned execution (both engines) -----------------------
    unsigned threadsVal = 1;
    std::unique_ptr<PartitionPlan> partPlan;
    std::unique_ptr<PartitionRunner> partRunner;
    /// One scratch plane (numPorts words) per plan thread; the
    /// levelized partitioned walk hands workers disjoint planes.
    std::vector<std::vector<uint64_t>> workerScratch;

    // --- Observability ----------------------------------------------
    std::vector<obs::SimObserver *> observerList;
    uint64_t cycleIndex = 0; ///< Settled cycles since reset().
};

/** Maximum Jacobi passes / local SCC iterations before giving up. */
constexpr int maxCombPasses = 256;

/**
 * Snapshot of all architectural state — registers and memory contents,
 * in model order. Used by cross-engine equivalence checks.
 */
std::vector<std::vector<uint64_t>> archState(const SimProgram &prog);

} // namespace calyx::sim

#endif // CALYX_SIM_ENV_H
