#ifndef CALYX_SIM_MODELS_H
#define CALYX_SIM_MODELS_H

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ir/cell.h"

namespace calyx::sim {

/**
 * Cycle-accurate model of one primitive cell instance. Outputs are
 * recomputed combinationally every evaluation pass; internal state
 * advances at clock edges.
 *
 * Timing convention shared by all sequential primitives: when `go` (or
 * `write_en`) is high during cycle t, the operation occupies cycles
 * t .. t+L-1 and the `done` port pulses high during cycle t+L, where L is
 * the primitive's latency. Data outputs hold their last computed value.
 */
/**
 * Static dependency metadata for one primitive model, used by the
 * levelized engine (sim/schedule.h) to build the port-level dependency
 * graph. `combEdges` lists which input ports combinationally feed which
 * output ports; inputs that are only sampled at clock edges (a
 * register's `in`/`write_en`, a memory's `write_data`) are deliberately
 * absent, which is what cuts the graph at sequential elements.
 */
struct ModelDeps
{
    /** Every port this model drives during evalComb(). */
    std::vector<uint32_t> outputs;

    /** (input port, output ports it combinationally affects). */
    std::vector<std::pair<uint32_t, std::vector<uint32_t>>> combEdges;

    /**
     * True when some output reads internal state that advances at clock
     * edges (registers, memories, pipes). The engine re-checks these
     * models' outputs after every clock() to seed the event queue.
     */
    bool stateful = false;
};

class PrimModel
{
  public:
    virtual ~PrimModel() = default;

    /** Recompute outputs: read `in[]`, write `out[]` (Jacobi pass). */
    virtual void evalComb(const uint64_t *in, uint64_t *out) const = 0;

    /**
     * Dependency contract for schedule construction. Every primitive
     * must declare all of its outputs, the input->output combinational
     * edges, and whether outputs depend on clocked internal state.
     */
    virtual ModelDeps deps() const = 0;

    /** Advance internal state using the settled values of this cycle. */
    virtual void clock(const uint64_t * /*vals*/) {}

    /** Reset internal state to power-on values. */
    virtual void reset() {}

    /** Backing storage for memory primitives (null otherwise). */
    virtual std::vector<uint64_t> *memory() { return nullptr; }

    /** Current value for register primitives. */
    virtual std::optional<uint64_t> registerValue() const
    {
        return std::nullopt;
    }

    /** Overwrite a register's value (test/bench initialization). */
    virtual void setRegisterValue(uint64_t) {}

    /**
     * Direct pointer to a register primitive's value storage (null for
     * everything else). The compiled engine (sim/compiled.h) binds
     * generated clock code to this address so register state stays
     * shared with the model object — archState(), registerValue(), and
     * harness pokes keep working across engines.
     */
    virtual uint64_t *registerStorage() { return nullptr; }
};

/** Resolves a port name of the modeled cell to its flat port id. */
using PortResolver = std::function<uint32_t(const std::string &)>;

/**
 * Build the simulation model for a primitive cell. fatal() if the
 * primitive has no model (unknown extern without a registered model).
 */
std::unique_ptr<PrimModel> makeModel(const Cell &cell,
                                     const PortResolver &resolve);

/** Integer square root (for std_sqrt and reference computations). */
uint64_t isqrt(uint64_t v);

} // namespace calyx::sim

#endif // CALYX_SIM_MODELS_H
