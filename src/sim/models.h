#ifndef CALYX_SIM_MODELS_H
#define CALYX_SIM_MODELS_H

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ir/cell.h"

namespace calyx::sim {

/**
 * Cycle-accurate model of one primitive cell instance. Outputs are
 * recomputed combinationally every evaluation pass; internal state
 * advances at clock edges.
 *
 * Timing convention shared by all sequential primitives: when `go` (or
 * `write_en`) is high during cycle t, the operation occupies cycles
 * t .. t+L-1 and the `done` port pulses high during cycle t+L, where L is
 * the primitive's latency. Data outputs hold their last computed value.
 */
class PrimModel
{
  public:
    virtual ~PrimModel() = default;

    /** Recompute outputs: read `in[]`, write `out[]` (Jacobi pass). */
    virtual void evalComb(const uint64_t *in, uint64_t *out) const = 0;

    /** Advance internal state using the settled values of this cycle. */
    virtual void clock(const uint64_t * /*vals*/) {}

    /** Reset internal state to power-on values. */
    virtual void reset() {}

    /** Backing storage for memory primitives (null otherwise). */
    virtual std::vector<uint64_t> *memory() { return nullptr; }

    /** Current value for register primitives. */
    virtual std::optional<uint64_t> registerValue() const
    {
        return std::nullopt;
    }

    /** Overwrite a register's value (test/bench initialization). */
    virtual void setRegisterValue(uint64_t) {}
};

/** Resolves a port name of the modeled cell to its flat port id. */
using PortResolver = std::function<uint32_t(const std::string &)>;

/**
 * Build the simulation model for a primitive cell. fatal() if the
 * primitive has no model (unknown extern without a registered model).
 */
std::unique_ptr<PrimModel> makeModel(const Cell &cell,
                                     const PortResolver &resolve);

/** Integer square root (for std_sqrt and reference computations). */
uint64_t isqrt(uint64_t v);

} // namespace calyx::sim

#endif // CALYX_SIM_MODELS_H
