#include "sim/partition.h"

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "sim/env.h"
#include "sim/schedule.h"
#include "support/pool.h"

namespace calyx::sim {

uint32_t
partitionTarget()
{
    if (const char *env = std::getenv("CALYX_SIM_PARTITIONS");
        env && *env) {
        long v = std::strtol(env, nullptr, 10);
        if (v < 1)
            v = 1;
        if (v > 256)
            v = 256;
        return static_cast<uint32_t>(v);
    }
    return 16;
}

namespace {

/** Iteration estimate for a cyclic (SCC) node's Gauss-Seidel loop. */
constexpr uint64_t sccIterEstimate = 8;

} // namespace

PartitionPlan
buildPartitionPlan(const SimProgram &prog, const SimSchedule &sched,
                   uint32_t target, unsigned threads)
{
    const auto &nodes = sched.nodes();
    const uint32_t N = static_cast<uint32_t>(nodes.size());
    PartitionPlan plan;
    plan.taskOfNode.assign(N, 0);
    if (target < 1)
        target = 1;
    if (N == 0) {
        assignThreads(plan, threads);
        return plan;
    }

    // Cost model: per port, one unit for the walk itself, one per
    // potential driver (guard eval + select), guard size over four
    // (SExpr nodes are cheap relative to a driver check), and two for
    // an inlined primitive evaluation. Cyclic nodes multiply by a
    // fixed-point iteration estimate. All static — the plan must be a
    // pure function of the design so the compiled engine can embed it.
    std::vector<uint32_t> fanIn(prog.numPorts(), 0);
    std::vector<uint32_t> guardWeight(prog.numPorts(), 0);
    prog.forEachAssignment([&](const SAssign &a, bool) {
        ++fanIn[a.dst];
        guardWeight[a.dst] +=
            static_cast<uint32_t>(a.guard.nodes.size());
    });

    std::vector<uint64_t> cost(N, 1);
    uint64_t totalCost = 0;
    for (uint32_t n = 0; n < N; ++n) {
        const SimSchedule::Node &node = nodes[n];
        const uint32_t *mem = sched.memberPorts().data() + node.first;
        uint64_t c = 0;
        for (uint32_t i = 0; i < node.count; ++i) {
            uint32_t p = mem[i];
            c += 1 + fanIn[p] + guardWeight[p] / 4 +
                 (sched.modelOf(p) ? 2 : 0);
        }
        if (node.cyclic)
            c *= std::min<uint64_t>(node.count, sccIterEstimate);
        cost[n] = c ? c : 1;
        totalCost += cost[n];
    }

    // Node-level dependency DAG, deduplicated from the port fanout.
    // Node ids are already topological, so predecessor lists only hold
    // smaller ids and fill in one ascending pass.
    std::vector<std::vector<uint32_t>> preds(N);
    {
        std::vector<uint32_t> seen(N, UINT32_MAX);
        for (uint32_t n = 0; n < N; ++n) {
            const SimSchedule::Node &node = nodes[n];
            const uint32_t *mem = sched.memberPorts().data() + node.first;
            for (uint32_t i = 0; i < node.count; ++i) {
                for (const uint32_t *q = sched.fanoutBegin(mem[i]),
                                    *e = sched.fanoutEnd(mem[i]);
                     q != e; ++q) {
                    uint32_t succ = sched.nodeOf(*q);
                    if (succ == n || seen[succ] == n)
                        continue;
                    seen[succ] = n;
                    preds[succ].push_back(n);
                }
            }
        }
    }

    // Longest-path levels: an edge always spans levels, so two nodes
    // on one level can never read each other and a level is safe to
    // split across concurrent tasks.
    std::vector<uint32_t> level(N, 0);
    uint32_t maxLevel = 0;
    for (uint32_t n = 0; n < N; ++n) {
        uint32_t l = 0;
        for (uint32_t p : preds[n])
            l = std::max(l, level[p] + 1);
        level[n] = l;
        maxLevel = std::max(maxLevel, l);
    }
    std::vector<std::vector<uint32_t>> byLevel(maxLevel + 1);
    for (uint32_t n = 0; n < N; ++n)
        byLevel[level[n]].push_back(n);

    const uint64_t grain = std::max<uint64_t>(totalCost / target, 1);

    // Cluster each level into cost-capped tasks. Nodes are ordered by
    // the smallest predecessor task first, so nodes fed by the same
    // upstream task pack together — fewer distinct cross-partition
    // dependency (and port) edges per task.
    std::vector<std::pair<uint32_t, uint32_t>> order; // (affinity, node)
    int64_t prevSingleTask = -1; // Sole task of the previous level.
    for (uint32_t lv = 0; lv <= maxLevel; ++lv) {
        order.clear();
        for (uint32_t n : byLevel[lv]) {
            uint32_t aff = UINT32_MAX;
            for (uint32_t p : preds[n])
                aff = std::min(aff, plan.taskOfNode[p]);
            order.emplace_back(aff, n);
        }
        std::sort(order.begin(), order.end());

        const size_t levelStart = plan.tasks.size();
        uint64_t cur = 0;
        bool open = false;
        for (const auto &[aff, n] : order) {
            (void)aff;
            if (!open || cur >= grain) {
                plan.tasks.emplace_back();
                plan.tasks.back().cost = 0;
                cur = 0;
                open = true;
            }
            plan.tasks.back().nodes.push_back(n);
            plan.taskOfNode[n] =
                static_cast<uint32_t>(plan.tasks.size() - 1);
            plan.tasks.back().cost += cost[n];
            cur += cost[n];
        }

        // Chain-merge: consecutive single-task levels are inherently
        // serial, so they collapse into one task — a deliberately
        // serial design (one long dependency chain) degrades to a
        // single task instead of one spin-synced task per level.
        if (plan.tasks.size() - levelStart == 1 && prevSingleTask >= 0) {
            PartitionPlan::Task merged = std::move(plan.tasks.back());
            plan.tasks.pop_back();
            PartitionPlan::Task &prev =
                plan.tasks[static_cast<size_t>(prevSingleTask)];
            for (uint32_t n : merged.nodes) {
                prev.nodes.push_back(n);
                plan.taskOfNode[n] = static_cast<uint32_t>(prevSingleTask);
            }
            prev.cost += merged.cost;
        } else if (plan.tasks.size() - levelStart == 1) {
            prevSingleTask = static_cast<int64_t>(plan.tasks.size() - 1);
        } else {
            prevSingleTask = -1;
        }
    }

    // Dependencies per task (deduplicated, ascending), nodes sorted
    // back into schedule order (a chain merge can interleave ids).
    std::vector<uint32_t> depSeen(plan.tasks.size(), UINT32_MAX);
    for (uint32_t t = 0; t < plan.tasks.size(); ++t) {
        PartitionPlan::Task &task = plan.tasks[t];
        std::sort(task.nodes.begin(), task.nodes.end());
        for (uint32_t n : task.nodes) {
            for (uint32_t p : preds[n]) {
                uint32_t pt = plan.taskOfNode[p];
                if (pt == t || depSeen[pt] == t)
                    continue;
                depSeen[pt] = t;
                task.deps.push_back(pt);
            }
        }
        std::sort(task.deps.begin(), task.deps.end());
        if (task.cost == 0)
            task.cost = 1;
    }

    // Absorption: sub-grain stragglers — a level's short tail, the
    // root's undriven go/done nodes — carry more dependency-counter
    // synchronization than work, and a serialized design must degrade
    // to ONE task, not a spin-synced chain of them. Three merges that
    // provably preserve the topological task order, applied to a fixed
    // point; each either joins adjacent tasks or moves a task with no
    // ordering edges on the violated side:
    //   - deps == {t-1}: fold into the immediately preceding task;
    //   - no deps, sole dependent t+1: fold into the following task
    //     (the nodes run later, which nothing constrains);
    //   - no edges at all: fold into the heaviest task.
    {
        auto mergeInto = [&plan](uint32_t src, uint32_t dst) {
            const uint32_t T =
                static_cast<uint32_t>(plan.tasks.size());
            PartitionPlan::Task absorbed = std::move(plan.tasks[src]);
            PartitionPlan::Task &d = plan.tasks[dst];
            d.nodes.insert(d.nodes.end(), absorbed.nodes.begin(),
                           absorbed.nodes.end());
            std::sort(d.nodes.begin(), d.nodes.end());
            d.cost += absorbed.cost;
            d.deps.insert(d.deps.end(), absorbed.deps.begin(),
                          absorbed.deps.end());
            plan.tasks.erase(plan.tasks.begin() +
                             static_cast<ptrdiff_t>(src));

            std::vector<uint32_t> newId(T);
            for (uint32_t i = 0; i < T; ++i)
                newId[i] = i - (i > src ? 1 : 0);
            newId[src] = dst - (dst > src ? 1 : 0);
            for (auto &task : plan.tasks) {
                for (uint32_t &dep : task.deps)
                    dep = newId[dep];
                std::sort(task.deps.begin(), task.deps.end());
                task.deps.erase(std::unique(task.deps.begin(),
                                            task.deps.end()),
                                task.deps.end());
            }
            uint32_t self = newId[src];
            auto &dd = plan.tasks[self].deps;
            dd.erase(std::remove(dd.begin(), dd.end(), self), dd.end());
            for (uint32_t &t : plan.taskOfNode)
                t = newId[t];
        };

        bool changed = true;
        while (changed && plan.tasks.size() > 1) {
            changed = false;
            const uint32_t T =
                static_cast<uint32_t>(plan.tasks.size());
            std::vector<uint32_t> dependentCount(T, 0);
            std::vector<uint32_t> soleDependent(T, 0);
            for (uint32_t t = 0; t < T; ++t) {
                for (uint32_t d : plan.tasks[t].deps) {
                    ++dependentCount[d];
                    soleDependent[d] = t;
                }
            }
            uint32_t heaviest = 0;
            for (uint32_t t = 1; t < T; ++t) {
                if (plan.tasks[t].cost > plan.tasks[heaviest].cost)
                    heaviest = t;
            }
            for (uint32_t t = 0; t < T; ++t) {
                const PartitionPlan::Task &tk = plan.tasks[t];
                if (tk.cost > grain)
                    continue;
                uint32_t dst = UINT32_MAX;
                if (t > 0 && tk.deps.size() == 1 &&
                    tk.deps[0] == t - 1)
                    dst = t - 1;
                else if (tk.deps.empty() && dependentCount[t] == 1 &&
                         soleDependent[t] == t + 1)
                    dst = t + 1;
                else if (tk.deps.empty() && dependentCount[t] == 0 &&
                         t != heaviest)
                    dst = heaviest;
                if (dst == UINT32_MAX)
                    continue;
                mergeInto(t, dst);
                changed = true;
                break;
            }
        }
    }

    assignThreads(plan, threads);
    return plan;
}

void
assignThreads(PartitionPlan &plan, unsigned threads)
{
    const size_t T = plan.tasks.size();
    if (threads < 1)
        threads = 1;
    if (T > 0 && threads > T)
        threads = static_cast<unsigned>(T);
    plan.threads = threads;
    plan.threadTasks.assign(threads, {});
    if (T == 0)
        return;
    if (threads == 1) {
        for (uint32_t t = 0; t < T; ++t) {
            plan.tasks[t].thread = 0;
            plan.threadTasks[0].push_back(t);
        }
        return;
    }

    // Critical-path priority: a task's priority is its cost plus the
    // costliest chain of dependents below it — the classic list-
    // scheduling heuristic (the same shape verilator's MTask packer
    // uses). Deps only point at smaller ids, so one reverse pass
    // suffices.
    std::vector<std::vector<uint32_t>> dependents(T);
    for (uint32_t t = 0; t < T; ++t) {
        for (uint32_t d : plan.tasks[t].deps)
            dependents[d].push_back(t);
    }
    std::vector<uint64_t> prio(T, 0);
    for (size_t t = T; t-- > 0;) {
        uint64_t below = 0;
        for (uint32_t s : dependents[t])
            below = std::max(below, prio[s]);
        prio[t] = plan.tasks[t].cost + below;
    }

    // Simulated list scheduling: repeatedly place the highest-priority
    // ready task on the worker that can start it earliest. All ties
    // break toward lower ids, so the plan is deterministic.
    std::vector<uint64_t> finish(T, 0), avail(threads, 0);
    std::vector<uint32_t> remaining(T);
    std::vector<uint32_t> ready;
    for (uint32_t t = 0; t < T; ++t) {
        remaining[t] = static_cast<uint32_t>(plan.tasks[t].deps.size());
        if (remaining[t] == 0)
            ready.push_back(t);
    }
    for (size_t placed = 0; placed < T; ++placed) {
        size_t bi = 0;
        for (size_t i = 1; i < ready.size(); ++i) {
            if (prio[ready[i]] > prio[ready[bi]] ||
                (prio[ready[i]] == prio[ready[bi]] &&
                 ready[i] < ready[bi]))
                bi = i;
        }
        uint32_t t = ready[bi];
        ready.erase(ready.begin() + static_cast<ptrdiff_t>(bi));

        uint64_t readyAt = 0;
        for (uint32_t d : plan.tasks[t].deps)
            readyAt = std::max(readyAt, finish[d]);
        unsigned bw = 0;
        uint64_t bestStart = std::max(avail[0], readyAt);
        for (unsigned w = 1; w < threads; ++w) {
            uint64_t start = std::max(avail[w], readyAt);
            if (start < bestStart) {
                bestStart = start;
                bw = w;
            }
        }
        finish[t] = bestStart + plan.tasks[t].cost;
        avail[bw] = finish[t];
        plan.tasks[t].thread = bw;
        plan.threadTasks[bw].push_back(t);

        for (uint32_t s : dependents[t]) {
            if (--remaining[s] == 0)
                ready.push_back(s);
        }
    }

    // Execute each worker's list in ascending task id: ids are
    // topological, so every dependency and every intra-thread ordering
    // edge strictly increases the id — the spin-wait execution below
    // is deadlock-free by induction on the id.
    for (auto &list : plan.threadTasks)
        std::sort(list.begin(), list.end());
}

PartitionRunner::PartitionRunner(const PartitionPlan &p)
    : plan(&p),
      doneStamp(new std::atomic<uint64_t>[p.tasks.empty()
                                              ? 1
                                              : p.tasks.size()])
{
    const size_t n = p.tasks.empty() ? 1 : p.tasks.size();
    for (size_t i = 0; i < n; ++i)
        doneStamp[i].store(0, std::memory_order_relaxed);
}

void
PartitionRunner::run(const std::function<void(uint32_t, unsigned)> &fn)
{
    const PartitionPlan &p = *plan;
    const uint32_t T = static_cast<uint32_t>(p.tasks.size());
    if (!p.parallel() || WorkPool::insideWorker()) {
        // Sequential fallback: ascending task ids are a topological
        // order, so in-order execution satisfies every dependency.
        for (uint32_t t = 0; t < T; ++t)
            fn(t, 0);
        return;
    }

    const uint64_t stamp = ++runStamp;
    std::atomic<bool> aborted{false};
    WorkPool::global().runConcurrent(p.threads, [&](size_t w) {
        for (uint32_t t : p.threadTasks[w]) {
            bool runnable = true;
            for (uint32_t d : p.tasks[t].deps) {
                // The acquire load pairs with the dependency's release
                // store below: once the stamp matches, every value the
                // dependency wrote is visible to this task.
                while (doneStamp[d].load(std::memory_order_acquire) !=
                       stamp) {
                    if (aborted.load(std::memory_order_acquire)) {
                        runnable = false;
                        break;
                    }
                    std::this_thread::yield();
                }
                if (!runnable)
                    break;
            }
            if (runnable && !aborted.load(std::memory_order_acquire)) {
                try {
                    fn(t, static_cast<unsigned>(w));
                } catch (...) {
                    // Publish the abort, then the stamp, so waiters on
                    // this task wake and bail instead of running on
                    // half-written state. The pool captures the
                    // exception and rethrows it on the caller after
                    // every worker drains.
                    aborted.store(true, std::memory_order_release);
                    doneStamp[t].store(stamp, std::memory_order_release);
                    throw;
                }
            }
            doneStamp[t].store(stamp, std::memory_order_release);
        }
    });
}

} // namespace calyx::sim
