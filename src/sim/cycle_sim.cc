#include "sim/cycle_sim.h"

#include "support/error.h"

namespace calyx::sim {

CycleSim::CycleSim(const SimProgram &prog, Engine engine)
    : prog(&prog), stateVal(prog, engine)
{}

void
CycleSim::activateRec(const SimProgram::Instance &inst)
{
    if (inst.hasGroups()) {
        fatal("CycleSim requires a fully-compiled program, but component ",
              inst.comp->name(), " still has groups");
    }
    stateVal.activate(inst.continuous);
    for (const auto &sub : inst.subs)
        activateRec(*sub);
}

uint64_t
CycleSim::run(uint64_t max_cycles)
{
    stateVal.reset();
    const SimProgram::Instance &top = prog->root();

    uint64_t cycles = 0;
    while (true) {
        if (++cycles > max_cycles)
            fatal("cycle simulation exceeded ", max_cycles, " cycles");
        stateVal.beginCycle();
        stateVal.force(top.goPort, 1);
        activateRec(top);
        stateVal.comb();
        bool done = stateVal.value(top.donePort) & 1;
        stateVal.clock();
        if (done) {
            stateVal.finishObservers(cycles);
            return cycles;
        }
    }
}

} // namespace calyx::sim
