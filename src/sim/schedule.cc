#include "sim/schedule.h"

#include <algorithm>
#include <utility>

#include "sim/env.h"
#include "support/error.h"

namespace calyx::sim {

namespace {

using Edge = std::pair<uint32_t, uint32_t>; ///< pred -> succ

/** Compressed sparse row successor lists from an edge list. */
void
buildCsr(uint32_t n, const std::vector<Edge> &edges,
         std::vector<uint32_t> &offset, std::vector<uint32_t> &data)
{
    offset.assign(n + 1, 0);
    for (const Edge &e : edges)
        ++offset[e.first + 1];
    for (uint32_t i = 0; i < n; ++i)
        offset[i + 1] += offset[i];
    data.resize(edges.size());
    std::vector<uint32_t> cursor(offset.begin(), offset.end() - 1);
    for (const Edge &e : edges)
        data[cursor[e.first]++] = e.second;
}

/**
 * Iterative Tarjan SCC. Components are emitted successors-first (every
 * edge out of an emitted component targets an earlier component), so
 * reversing the emission order yields a topological evaluation order.
 */
std::vector<std::vector<uint32_t>>
tarjanScc(uint32_t n, const std::vector<uint32_t> &off,
          const std::vector<uint32_t> &dat)
{
    std::vector<std::vector<uint32_t>> comps;
    std::vector<uint32_t> index(n, 0), low(n, 0), stack;
    std::vector<uint8_t> onStack(n, 0);
    std::vector<uint32_t> dfsNode, dfsEdge;
    uint32_t counter = 0;

    for (uint32_t start = 0; start < n; ++start) {
        if (index[start])
            continue;
        index[start] = low[start] = ++counter;
        stack.push_back(start);
        onStack[start] = 1;
        dfsNode.push_back(start);
        dfsEdge.push_back(off[start]);
        while (!dfsNode.empty()) {
            uint32_t v = dfsNode.back();
            if (dfsEdge.back() < off[v + 1]) {
                uint32_t w = dat[dfsEdge.back()++];
                if (!index[w]) {
                    index[w] = low[w] = ++counter;
                    stack.push_back(w);
                    onStack[w] = 1;
                    dfsNode.push_back(w);
                    dfsEdge.push_back(off[w]);
                } else if (onStack[w]) {
                    low[v] = std::min(low[v], index[w]);
                }
            } else {
                dfsNode.pop_back();
                dfsEdge.pop_back();
                if (!dfsNode.empty()) {
                    uint32_t p = dfsNode.back();
                    low[p] = std::min(low[p], low[v]);
                }
                if (low[v] == index[v]) {
                    comps.emplace_back();
                    uint32_t w;
                    do {
                        w = stack.back();
                        stack.pop_back();
                        onStack[w] = 0;
                        comps.back().push_back(w);
                    } while (w != v);
                }
            }
        }
    }
    return comps;
}

std::string
portList(const SimProgram &prog, const std::vector<uint32_t> &ports)
{
    std::string out;
    for (uint32_t p : ports) {
        if (!out.empty())
            out += ", ";
        out += prog.portName(p);
    }
    return out;
}

} // namespace

SimSchedule::SimSchedule(const SimProgram &prog)
{
    const uint32_t n = static_cast<uint32_t>(prog.numPorts());
    portModel.assign(n, nullptr);
    portNode.assign(n, 0);

    std::vector<Edge> edges;
    /// Edges no runtime activation choice can remove: unguarded
    /// continuous assignments and model combinational dependencies.
    std::vector<Edge> uncondEdges;
    std::vector<uint8_t> selfLoop(n, 0);
    std::vector<uint32_t> guardPorts;

    prog.forEachAssignment([&](const SAssign &a, bool continuous) {
        bool uncond = continuous && a.guard.nodes.empty();
        if (!a.srcConst) {
            edges.push_back({a.srcPort, a.dst});
            if (a.srcPort == a.dst)
                selfLoop[a.dst] = 1;
            if (uncond)
                uncondEdges.push_back({a.srcPort, a.dst});
        }
        guardPorts.clear();
        a.guard.collectPorts(guardPorts);
        for (uint32_t g : guardPorts) {
            edges.push_back({g, a.dst});
            if (g == a.dst)
                selfLoop[a.dst] = 1;
        }
    });

    for (const auto &m : prog.models()) {
        ModelDeps d = m->deps();
        for (uint32_t o : d.outputs)
            portModel[o] = m.get();
        for (const auto &[in, outs] : d.combEdges) {
            for (uint32_t o : outs) {
                edges.push_back({in, o});
                if (in == o)
                    selfLoop[o] = 1;
                uncondEdges.push_back({in, o});
            }
        }
        if (d.stateful) {
            stateful.push_back(m.get());
            statefulOuts.push_back(d.outputs);
        }
    }

    // Reject unconditional combinational cycles up front: these cannot
    // settle under any activation, so diagnose them by name instead of
    // timing out at runtime.
    {
        std::vector<uint32_t> off, dat;
        buildCsr(n, uncondEdges, off, dat);
        std::vector<uint8_t> uncondSelf(n, 0);
        for (const Edge &e : uncondEdges) {
            if (e.first == e.second)
                uncondSelf[e.first] = 1;
        }
        for (const auto &comp : tarjanScc(n, off, dat)) {
            if (comp.size() > 1 || uncondSelf[comp[0]]) {
                fatal("combinational loop through ports: ",
                      portList(prog, comp));
            }
        }
    }

    // Condense the full potential-driver graph and order it.
    std::vector<uint32_t> off, dat;
    buildCsr(n, edges, off, dat);
    auto comps = tarjanScc(n, off, dat);

    nodeList.reserve(comps.size());
    members.reserve(n);
    for (auto it = comps.rbegin(); it != comps.rend(); ++it) {
        Node node;
        node.first = static_cast<uint32_t>(members.size());
        node.count = static_cast<uint32_t>(it->size());
        node.cyclic = it->size() > 1 || selfLoop[(*it)[0]];
        uint32_t id = static_cast<uint32_t>(nodeList.size());
        for (uint32_t p : *it) {
            members.push_back(p);
            portNode[p] = id;
        }
        nodeList.push_back(node);
    }

    // Dedup'd fanout lists for event propagation.
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    buildCsr(n, edges, fanoutOffset, fanoutData);
}

} // namespace calyx::sim
