#include "sim/batch.h"

#include <algorithm>
#include <functional>
#include <queue>
#include <unordered_map>

#include "sim/compiled.h"
#include "sim/models.h"
#include "sim/partition.h"
#include "support/pool.h"
#include "sim/schedule.h"
#include "support/error.h"

namespace calyx::sim {

/**
 * Everything the levelized lane engine resolves once per runner:
 * static driver lists (batched programs are fully lowered, so the
 * activation set is always the full continuous set — exactly what
 * CycleSim activates), the model index behind each port, and the
 * stateful models that seed the next cycle's event queue.
 */
struct BatchRunner::LevelizedPlan
{
    const SimSchedule *sched = nullptr;
    std::vector<std::vector<const SAssign *>> activeByPort;
    std::vector<int32_t> portModelIdx; ///< models() index or -1.
    std::vector<size_t> statefulIdx;   ///< models() index per stateful.
    uint32_t goPort = 0, donePort = 0, numPorts = 0;
};

BatchRunner::BatchRunner(const SimProgram &program, const BatchOptions &o)
    : prog(&program), opts(o)
{
    if (prog->hasGroups()) {
        fatal("batched simulation requires a fully-lowered program "
              "(run the default pipeline first)");
    }
    if (opts.engine == Engine::Jacobi) {
        fatal("batched simulation supports the levelized and compiled "
              "engines; the jacobi oracle stays scalar (use "
              "--sim-engine=levelized or compiled)");
    }
    if (opts.laneTile == 0)
        fatal("batched simulation: lane tile must be >= 1");
    if (opts.threads == 0)
        fatal("batched simulation: thread count must be >= 1");

    // Stateful slot maps in model order — the same walk order the
    // compiled module's register/memory slots use (emit/cppsim.cc).
    auto paths = prog->modelPaths();
    const auto &models = prog->models();
    for (size_t i = 0; i < models.size(); ++i) {
        if (models[i]->registerValue()) {
            regModelIdx.push_back(i);
            regPathList.push_back(paths[i].str());
        } else if (const auto *mem = models[i]->memory()) {
            memSlotByPath[paths[i].str()] = memModelIdx.size();
            memModelIdx.push_back(i);
            memPathList.push_back(paths[i].str());
            memSizes.push_back(mem->size());
        }
    }

    // Build the schedule now, on the caller: tiles run on pool threads
    // and must only ever read it.
    const SimSchedule &sched = prog->schedule();

    if (opts.engine == Engine::Levelized) {
        plan = std::make_unique<LevelizedPlan>();
        plan->sched = &sched;
        plan->numPorts = static_cast<uint32_t>(prog->numPorts());
        plan->goPort = prog->root().goPort;
        plan->donePort = prog->root().donePort;
        plan->activeByPort.resize(plan->numPorts);
        prog->forEachAssignment([&](const SAssign &a, bool continuous) {
            if (continuous)
                plan->activeByPort[a.dst].push_back(&a);
        });
        std::unordered_map<const PrimModel *, int32_t> idxOf;
        for (size_t i = 0; i < models.size(); ++i)
            idxOf[models[i].get()] = static_cast<int32_t>(i);
        plan->portModelIdx.assign(plan->numPorts, -1);
        for (uint32_t p = 0; p < plan->numPorts; ++p) {
            if (const PrimModel *m = sched.modelOf(p))
                plan->portModelIdx[p] = idxOf.at(m);
        }
        for (const PrimModel *m : sched.statefulModels())
            plan->statefulIdx.push_back(idxOf.at(m));
    }
}

BatchRunner::~BatchRunner() = default;

std::shared_ptr<CompiledModule>
BatchRunner::moduleFor(uint32_t lanes, uint32_t partitions)
{
    auto key = std::make_pair(lanes, partitions);
    auto it = modules.find(key);
    if (it != modules.end())
        return it->second;
    auto mod = CompiledModule::load(*prog, /*probe=*/false, lanes,
                                    partitions);
    ++loads;
    allFromCache = allFromCache && mod->fromCache();
    modules.emplace(key, mod);
    return mod;
}

std::vector<std::vector<uint64_t>>
BatchRunner::seedImages(const Stimulus &s) const
{
    std::vector<std::vector<uint64_t>> imgs(memModelIdx.size());
    for (const auto &[path, data] : s.mems) {
        auto it = memSlotByPath.find(path);
        if (it == memSlotByPath.end()) {
            std::string known;
            for (const auto &kv : memSlotByPath) {
                if (!known.empty())
                    known += ", ";
                known += kv.first;
            }
            fatal("batched simulation: stimulus names unknown memory '",
                  path, "' (memories: ",
                  known.empty() ? "<none>" : known, ")");
        }
        size_t slot = it->second;
        if (data.size() > memSizes[slot]) {
            fatal("batched simulation: stimulus image for ", path, " has ",
                  data.size(), " words but the memory holds ",
                  memSizes[slot]);
        }
        imgs[slot].assign(memSizes[slot], 0);
        std::copy(data.begin(), data.end(), imgs[slot].begin());
    }
    return imgs;
}

void
BatchRunner::runCompiledTile(const std::vector<Stimulus> &batch,
                             size_t start, size_t count, uint32_t lanes,
                             const CompiledModule &mod,
                             PartitionRunner *runner,
                             std::vector<LaneResult> &out)
{
    const size_t np = prog->numPorts();
    const size_t numRegs = regModelIdx.size();
    const size_t numMems = memModelIdx.size();
    const uint64_t goBase = uint64_t(prog->root().goPort) * lanes;
    const uint64_t doneBase = uint64_t(prog->root().donePort) * lanes;

    std::vector<uint64_t> vals(np * lanes, 0);
    std::vector<uint64_t> regStore(numRegs * lanes, 0);
    std::vector<std::vector<uint64_t>> memStore(numMems);
    std::vector<uint64_t *> regPtrs(numRegs ? numRegs : 1, nullptr);
    std::vector<uint64_t *> memPtrs(numMems ? numMems : 1, nullptr);
    for (size_t r = 0; r < numRegs; ++r)
        regPtrs[r] = regStore.data() + r * lanes;
    for (size_t m = 0; m < numMems; ++m) {
        memStore[m].assign(memSizes[m] * lanes, 0);
        memPtrs[m] = memStore[m].data();
    }

    struct InstGuard
    {
        const CompiledModule &mod;
        void *inst;
        ~InstGuard() { mod.freeInstance(inst); }
    } inst{mod, mod.newInstance()};

    mod.bind(inst.inst, regPtrs.data(), memPtrs.data());
    mod.reset(inst.inst, vals.data());

    // Seed: short tail tiles pad with copies of the tile's first
    // stimulus — a real, terminating input whose results are dropped.
    for (uint32_t l = 0; l < lanes; ++l) {
        auto imgs = seedImages(batch[start + (l < count ? l : 0)]);
        for (size_t m = 0; m < numMems; ++m) {
            if (!imgs[m].empty()) {
                std::copy(imgs[m].begin(), imgs[m].end(),
                          memStore[m].begin() + size_t(l) * memSizes[m]);
            }
        }
        vals[goBase + l] = 1;
    }

    std::vector<char> alive(lanes, 1), doneFlag(lanes, 0);
    uint32_t liveCount = lanes;
    uint64_t cycles = 0;
    while (liveCount) {
        if (++cycles > opts.maxCycles) {
            fatal("batched simulation exceeded ", opts.maxCycles,
                  " cycles with ", liveCount, " of ", lanes,
                  " lanes unfinished");
        }
        // Partitioned settle: the runner walks the module's macro-task
        // plan across the pool; error() on a partitioned module
        // aggregates every task's private slot after the join.
        if (runner) {
            runner->run([&](uint32_t task, unsigned) {
                mod.evalPartition(inst.inst, vals.data(), task);
            });
        } else {
            mod.eval(inst.inst, vals.data());
        }
        if (const char *e = mod.error(inst.inst))
            fatal("compiled engine: ", e);
        // done is sampled where CycleSim samples it: after the settle,
        // before the edge.
        for (uint32_t l = 0; l < lanes; ++l)
            doneFlag[l] = alive[l] && (vals[doneBase + l] & 1);
        mod.clock(inst.inst, vals.data());
        if (const char *e = mod.error(inst.inst))
            fatal("compiled engine: ", e);
        for (uint32_t l = 0; l < lanes; ++l) {
            if (!doneFlag[l])
                continue;
            // Retire: snapshot post-edge state (what a scalar run
            // returns), then drop go so the lane's design idles while
            // sibling lanes run on.
            alive[l] = 0;
            --liveCount;
            vals[goBase + l] = 0;
            if (l >= count)
                continue; // Padding lane.
            LaneResult &r = out[start + l];
            r.cycles = cycles;
            r.regs.resize(numRegs);
            for (size_t rr = 0; rr < numRegs; ++rr)
                r.regs[rr] = regStore[rr * lanes + l];
            r.mems.resize(numMems);
            for (size_t m = 0; m < numMems; ++m) {
                auto first = memStore[m].begin() + size_t(l) * memSizes[m];
                r.mems[m].assign(first, first + memSizes[m]);
            }
        }
    }
}

void
BatchRunner::runLevelizedTile(const std::vector<Stimulus> &batch,
                              size_t start, size_t count,
                              PartitionRunner *runner,
                              std::vector<LaneResult> &out)
{
    const LevelizedPlan &P = *plan;
    const SimSchedule &sched = *P.sched;
    const uint32_t np = P.numPorts;
    const size_t K = count;

    // Lane-major value planes: lane l owns the contiguous slice
    // [l*np, (l+1)*np), so SExpr::eval and PrimModel::evalComb run
    // verbatim on the lane's base pointer.
    std::vector<uint64_t> vals(size_t(np) * K, 0);
    std::vector<uint64_t> tmp(size_t(np) * K, 0);

    // Private model set per lane: stateful storage behind the ordinary
    // PrimModel interface, disjoint across lanes.
    std::vector<std::vector<std::unique_ptr<PrimModel>>> models(K);
    for (size_t l = 0; l < K; ++l) {
        models[l] = prog->newModelSet();
        for (auto &m : models[l])
            m->reset();
        auto imgs = seedImages(batch[start + l]);
        for (size_t mi = 0; mi < memModelIdx.size(); ++mi) {
            if (imgs[mi].empty())
                continue;
            std::vector<uint64_t> *dst =
                models[l][memModelIdx[mi]]->memory();
            std::copy(imgs[mi].begin(), imgs[mi].end(), dst->begin());
        }
    }

    std::vector<char> alive(K, 1), goVal(K, 1);
    size_t liveCount = K;

    // One dirty-node queue shared by every lane (the union of the
    // lanes' dirty cones). Re-evaluating a node whose inputs did not
    // change in some lane is idempotent there, so each lane still
    // follows its exact scalar trajectory.
    const size_t numNodes = sched.nodes().size();
    std::vector<char> inQueue(numNodes, 0);
    std::priority_queue<uint32_t, std::vector<uint32_t>,
                        std::greater<uint32_t>>
        queue;
    auto markDirty = [&](uint32_t port) {
        uint32_t n = sched.nodeOf(port);
        if (!inQueue[n]) {
            inQueue[n] = 1;
            queue.push(n);
        }
    };
    if (!runner) {
        for (uint32_t n = 0; n < numNodes; ++n) {
            inQueue[n] = 1;
            queue.push(n);
        }
    }

    // Driver priority mirrors SimState::evalPort: active assignment
    // beats the go force beats model output beats zero. `tmpBlock` is
    // a np*K scratch block for evalComb results — the shared `tmp` on
    // the serial path, a worker-private block under the partition
    // runner (evalComb writes every output of a model, so concurrent
    // tasks sharing one block would race on ports they do not own).
    auto evalPort = [&](size_t l, uint32_t p, bool check,
                        uint64_t *tmpBlock) -> uint64_t {
        uint64_t *base = vals.data() + l * np;
        const SAssign *winner = nullptr;
        for (const SAssign *a : P.activeByPort[p]) {
            if (!a->guard.eval(base))
                continue;
            if (winner && check) {
                fatal("multiple active drivers for port ",
                      prog->portName(p), ":\n  ",
                      prog->assignDesc(winner->id), "\n  ",
                      prog->assignDesc(a->id));
            }
            winner = a;
        }
        if (winner)
            return winner->srcConst ? winner->srcValue
                                    : base[winner->srcPort];
        if (p == P.goPort)
            return goVal[l] ? 1 : 0;
        int32_t mi = P.portModelIdx[p];
        if (mi >= 0) {
            uint64_t *tb = tmpBlock + l * np;
            models[l][mi]->evalComb(base, tb);
            return tb[p];
        }
        return 0;
    };

    std::vector<char> memChanged; // Per-SCC-member any-lane-changed.
    auto evalNode = [&](uint32_t ni) {
        const SimSchedule::Node &node = sched.nodes()[ni];
        const uint32_t *mem = sched.memberPorts().data() + node.first;
        if (!node.cyclic) {
            uint32_t p = mem[0];
            bool changed = false;
            for (size_t l = 0; l < K; ++l) {
                if (!alive[l])
                    continue;
                uint64_t *base = vals.data() + l * np;
                uint64_t nv = evalPort(l, p, true, tmp.data());
                if (nv != base[p]) {
                    base[p] = nv;
                    changed = true;
                }
            }
            if (changed) {
                for (const uint32_t *q = sched.fanoutBegin(p),
                                    *e = sched.fanoutEnd(p);
                     q != e; ++q)
                    markDirty(*q);
            }
            return;
        }

        // Non-trivial SCC: per-lane bounded Gauss-Seidel fixed point,
        // the exact sweep SimState::evalNode runs.
        memChanged.assign(node.count, 0);
        for (size_t l = 0; l < K; ++l) {
            if (!alive[l])
                continue;
            uint64_t *base = vals.data() + l * np;
            bool changed = true;
            int iter = 0;
            while (changed) {
                if (++iter > maxCombPasses) {
                    std::string ports;
                    for (uint32_t i = 0; i < node.count; ++i) {
                        if (!ports.empty())
                            ports += ", ";
                        ports += prog->portName(mem[i]);
                    }
                    fatal("combinational cycle did not settle after ",
                          maxCombPasses,
                          " iterations; ports on the cycle: ", ports);
                }
                changed = false;
                for (uint32_t i = 0; i < node.count; ++i) {
                    uint32_t p = mem[i];
                    uint64_t nv = evalPort(l, p, false, tmp.data());
                    if (nv != base[p]) {
                        base[p] = nv;
                        memChanged[i] = 1;
                        changed = true;
                    }
                }
            }
            for (uint32_t i = 0; i < node.count; ++i) {
                // Settled conflict re-check.
                evalPort(l, mem[i], true, tmp.data());
            }
        }
        for (uint32_t i = 0; i < node.count; ++i) {
            if (!memChanged[i])
                continue;
            uint32_t p = mem[i];
            for (const uint32_t *q = sched.fanoutBegin(p),
                                *e = sched.fanoutEnd(p);
                 q != e; ++q) {
                if (sched.nodeOf(*q) != ni)
                    markDirty(*q);
            }
        }
    };

    // Partitioned variant of evalNode for the macro-task walk: the full
    // schedule re-evaluates every cycle, so the dirty-queue bookkeeping
    // (markDirty fanout marking, the shared memChanged vector) drops
    // out entirely and evalComb scratch comes from the worker's block.
    auto evalNodeFull = [&](uint32_t ni, uint64_t *tmpBlock) {
        const SimSchedule::Node &node = sched.nodes()[ni];
        const uint32_t *mem = sched.memberPorts().data() + node.first;
        if (!node.cyclic) {
            uint32_t p = mem[0];
            for (size_t l = 0; l < K; ++l) {
                if (!alive[l])
                    continue;
                vals[l * np + p] = evalPort(l, p, true, tmpBlock);
            }
            return;
        }
        for (size_t l = 0; l < K; ++l) {
            if (!alive[l])
                continue;
            uint64_t *base = vals.data() + l * np;
            bool changed = true;
            int iter = 0;
            while (changed) {
                if (++iter > maxCombPasses) {
                    std::string ports;
                    for (uint32_t i = 0; i < node.count; ++i) {
                        if (!ports.empty())
                            ports += ", ";
                        ports += prog->portName(mem[i]);
                    }
                    fatal("combinational cycle did not settle after ",
                          maxCombPasses,
                          " iterations; ports on the cycle: ", ports);
                }
                changed = false;
                for (uint32_t i = 0; i < node.count; ++i) {
                    uint32_t p = mem[i];
                    uint64_t nv = evalPort(l, p, false, tmpBlock);
                    if (nv != base[p]) {
                        base[p] = nv;
                        changed = true;
                    }
                }
            }
            for (uint32_t i = 0; i < node.count; ++i) {
                // Settled conflict re-check.
                evalPort(l, mem[i], true, tmpBlock);
            }
        }
    };

    // Worker-private evalComb scratch blocks for the partition runner.
    std::vector<std::vector<uint64_t>> wscratch;
    if (runner) {
        wscratch.assign(innerPlan->threads,
                        std::vector<uint64_t>(size_t(np) * K, 0));
    }

    const auto &stateful = sched.statefulModels();
    uint64_t cycles = 0;
    while (liveCount) {
        if (++cycles > opts.maxCycles) {
            fatal("batched simulation exceeded ", opts.maxCycles,
                  " cycles with ", liveCount, " of ", K,
                  " lanes unfinished");
        }
        if (runner) {
            runner->run([&](uint32_t task, unsigned worker) {
                uint64_t *blk = wscratch[worker].data();
                for (uint32_t n : innerPlan->tasks[task].nodes)
                    evalNodeFull(n, blk);
            });
        } else {
            while (!queue.empty()) {
                uint32_t n = queue.top();
                queue.pop();
                inQueue[n] = 0;
                evalNode(n);
            }
        }
        for (size_t l = 0; l < K; ++l) {
            if (!alive[l])
                continue;
            uint64_t *base = vals.data() + l * np;
            bool done = base[P.donePort] & 1;
            for (auto &m : models[l])
                m->clock(base);
            // Seed the next cycle's queue from stateful outputs that
            // moved at the edge (union over lanes). The partitioned
            // walk re-evaluates the full schedule, so it needs no seed.
            if (!runner) {
                uint64_t *tb = tmp.data() + l * np;
                for (size_t i = 0; i < stateful.size(); ++i) {
                    models[l][P.statefulIdx[i]]->evalComb(base, tb);
                    for (uint32_t o : sched.statefulOutputs(i)) {
                        if (tb[o] != base[o])
                            markDirty(o);
                    }
                }
            }
            if (!done)
                continue;
            // Retire this lane; dead lanes are skipped everywhere, so
            // no propagation of the dropped go is needed.
            alive[l] = 0;
            goVal[l] = 0;
            --liveCount;
            LaneResult &r = out[start + l];
            r.cycles = cycles;
            r.regs.reserve(regModelIdx.size());
            for (size_t idx : regModelIdx)
                r.regs.push_back(*models[l][idx]->registerValue());
            r.mems.reserve(memModelIdx.size());
            for (size_t idx : memModelIdx)
                r.mems.push_back(*models[l][idx]->memory());
        }
    }
}

std::vector<LaneResult>
BatchRunner::run(const std::vector<Stimulus> &batch)
{
    std::vector<LaneResult> out(batch.size());
    if (batch.empty())
        return out;
    const size_t B = batch.size();

    if (opts.engine == Engine::Compiled) {
        // Fixed lane width (see BatchOptions::laneTile): the one
        // resident module runs every batch, padding short tiles.
        const uint32_t L = opts.laneTile;
        const size_t nTiles = (B + L - 1) / L;
        // Single-tile batches move the threads inside the tile (see
        // BatchOptions::threads): a partitioned module plus its
        // macro-task runner, running on the caller since the outer
        // parallelFor over one tile is serial.
        const unsigned inner =
            opts.threads > 1 && nTiles == 1 ? opts.threads : 1;
        auto mod = moduleFor(L, inner > 1 ? partitionTarget() : 0);
        PartitionRunner *runner = nullptr;
        if (inner > 1 && mod->numPartitions() > 1) {
            if (!innerPlan) {
                innerPlan = std::make_unique<PartitionPlan>(
                    mod->partitionPlan(inner));
                innerRunner = std::make_unique<PartitionRunner>(*innerPlan);
            }
            runner = innerRunner.get();
        }
        WorkPool::global().parallelFor(
            nTiles, opts.threads, [&](size_t t) {
                size_t startIdx = t * L;
                size_t count = std::min<size_t>(L, B - startIdx);
                runCompiledTile(batch, startIdx, count, L, *mod, runner,
                                out);
            });
    } else {
        const uint32_t L =
            static_cast<uint32_t>(std::min<size_t>(opts.laneTile, B));
        const size_t nTiles = (B + L - 1) / L;
        const unsigned inner =
            opts.threads > 1 && nTiles == 1 ? opts.threads : 1;
        PartitionRunner *runner = nullptr;
        if (inner > 1) {
            if (!innerPlan) {
                innerPlan = std::make_unique<PartitionPlan>(
                    buildPartitionPlan(*prog, *plan->sched,
                                       partitionTarget(), inner));
                innerRunner = std::make_unique<PartitionRunner>(*innerPlan);
            }
            if (innerPlan->parallel())
                runner = innerRunner.get();
        }
        WorkPool::global().parallelFor(
            nTiles, opts.threads, [&](size_t t) {
                size_t startIdx = t * L;
                size_t count = std::min<size_t>(L, B - startIdx);
                runLevelizedTile(batch, startIdx, count, runner, out);
            });
    }
    return out;
}

std::vector<LaneResult>
runBatch(const SimProgram &prog, const std::vector<Stimulus> &batch,
         const BatchOptions &opts)
{
    BatchRunner runner(prog, opts);
    return runner.run(batch);
}

} // namespace calyx::sim
