#ifndef CALYX_SIM_CYCLE_SIM_H
#define CALYX_SIM_CYCLE_SIM_H

#include <cstdint>

#include "sim/env.h"

namespace calyx::sim {

/**
 * Structural cycle simulator for fully-lowered Calyx programs (flat
 * guarded assignments, no groups or control). This is the repository's
 * substitute for Verilator: after RemoveGroups a Calyx program is the
 * RTL netlist modulo syntax, so clocking it with the primitive models
 * yields the cycle counts the paper measures (§7 evaluation setup).
 *
 * The combinational engine is selectable (docs/simulation.md): the
 * levelized event-driven engine is the default; the Jacobi fixed-point
 * engine remains available as the reference oracle.
 */
class CycleSim
{
  public:
    explicit CycleSim(const SimProgram &prog,
                      Engine engine = Engine::Levelized);

    /**
     * Drive `go` high and clock the design until `done` reads 1.
     * @return cycle count, inclusive of the cycle when done is observed.
     */
    uint64_t run(uint64_t max_cycles = 50'000'000);

    SimState &state() { return stateVal; }
    const SimState &state() const { return stateVal; }

  private:
    void activateRec(const SimProgram::Instance &inst);

    const SimProgram *prog;
    SimState stateVal;
};

} // namespace calyx::sim

#endif // CALYX_SIM_CYCLE_SIM_H
