#include "sim/models.h"

#include <optional>

#include "ir/primitives.h"
#include "support/bits.h"
#include "support/error.h"

namespace calyx::sim {

namespace {

/** Stateless one-output model: std_const. */
class ConstModel final : public PrimModel
{
  public:
    ConstModel(uint32_t out, uint64_t value) : out(out), value(value) {}

    void
    evalComb(const uint64_t *, uint64_t *o) const override
    {
        o[out] = value;
    }

    ModelDeps
    deps() const override
    {
        return {{out}, {}, false};
    }

  private:
    uint32_t out;
    uint64_t value;
};

/** Unary combinational ops: std_wire, std_not, std_slice, std_pad. */
class UnaryModel final : public PrimModel
{
  public:
    enum class Op { Wire, Not, Slice, Pad };

    UnaryModel(Op op, uint32_t in, uint32_t out, Width out_width)
        : op(op), in(in), out(out), outWidth(out_width)
    {}

    void
    evalComb(const uint64_t *i, uint64_t *o) const override
    {
        uint64_t v = i[in];
        switch (op) {
          case Op::Wire:
          case Op::Pad:
          case Op::Slice:
            o[out] = truncate(v, outWidth);
            break;
          case Op::Not:
            o[out] = truncate(~v, outWidth);
            break;
        }
    }

    ModelDeps
    deps() const override
    {
        return {{out}, {{in, {out}}}, false};
    }

  private:
    Op op;
    uint32_t in, out;
    Width outWidth;
};

/** Binary combinational ops (add, sub, logic, shifts). */
class BinModel final : public PrimModel
{
  public:
    enum class Op { Add, Sub, And, Or, Xor, Lsh, Rsh };

    BinModel(Op op, uint32_t l, uint32_t r, uint32_t out, Width width)
        : op(op), l(l), r(r), out(out), width(width)
    {}

    void
    evalComb(const uint64_t *i, uint64_t *o) const override
    {
        uint64_t a = i[l], b = i[r], v = 0;
        switch (op) {
          case Op::Add:
            v = a + b;
            break;
          case Op::Sub:
            v = a - b;
            break;
          case Op::And:
            v = a & b;
            break;
          case Op::Or:
            v = a | b;
            break;
          case Op::Xor:
            v = a ^ b;
            break;
          case Op::Lsh:
            v = b >= 64 ? 0 : a << b;
            break;
          case Op::Rsh:
            v = b >= 64 ? 0 : a >> b;
            break;
        }
        o[out] = truncate(v, width);
    }

    ModelDeps
    deps() const override
    {
        return {{out}, {{l, {out}}, {r, {out}}}, false};
    }

  private:
    Op op;
    uint32_t l, r, out;
    Width width;
};

/** Comparison ops with 1-bit outputs. All comparisons are unsigned. */
class CmpModel final : public PrimModel
{
  public:
    enum class Op { Eq, Neq, Lt, Gt, Le, Ge };

    CmpModel(Op op, uint32_t l, uint32_t r, uint32_t out)
        : op(op), l(l), r(r), out(out)
    {}

    void
    evalComb(const uint64_t *i, uint64_t *o) const override
    {
        uint64_t a = i[l], b = i[r];
        bool v = false;
        switch (op) {
          case Op::Eq:
            v = a == b;
            break;
          case Op::Neq:
            v = a != b;
            break;
          case Op::Lt:
            v = a < b;
            break;
          case Op::Gt:
            v = a > b;
            break;
          case Op::Le:
            v = a <= b;
            break;
          case Op::Ge:
            v = a >= b;
            break;
        }
        o[out] = v ? 1 : 0;
    }

    ModelDeps
    deps() const override
    {
        return {{out}, {{l, {out}}, {r, {out}}}, false};
    }

  private:
    Op op;
    uint32_t l, r, out;
};

/** std_reg: one-cycle write with a registered done pulse. */
class RegModel final : public PrimModel
{
  public:
    RegModel(uint32_t in, uint32_t write_en, uint32_t out, uint32_t done,
             Width width)
        : in(in), writeEn(write_en), out(out), done(done), width(width)
    {}

    void
    evalComb(const uint64_t *, uint64_t *o) const override
    {
        o[out] = value;
        o[done] = donePulse ? 1 : 0;
    }

    void
    clock(const uint64_t *vals) override
    {
        if (vals[writeEn] & 1) {
            value = truncate(vals[in], width);
            donePulse = true;
        } else {
            donePulse = false;
        }
    }

    void
    reset() override
    {
        value = 0;
        donePulse = false;
    }

    std::optional<uint64_t> registerValue() const override { return value; }
    void setRegisterValue(uint64_t v) override
    {
        value = truncate(v, width);
    }
    uint64_t *registerStorage() override { return &value; }

    /// `in`/`write_en` are sampled only at the clock edge: no comb edges.
    ModelDeps
    deps() const override
    {
        return {{out, done}, {}, true};
    }

  private:
    uint32_t in, writeEn, out, done;
    Width width;
    uint64_t value = 0;
    bool donePulse = false;
};

/**
 * std_mem_d1 / std_mem_d2 with combinational reads and 1-cycle writes.
 * Dual-ported: port 0 reads/writes, port 1 is read-only.
 */
class MemModel final : public PrimModel
{
  public:
    MemModel(std::vector<uint32_t> addrs, std::vector<uint32_t> addrs1,
             std::vector<uint64_t> dims, uint32_t write_data,
             uint32_t write_en, uint32_t read_data, uint32_t read_data1,
             uint32_t done, Width width, const std::string &name)
        : addrs(std::move(addrs)), addrs1(std::move(addrs1)),
          dims(std::move(dims)), writeData(write_data), writeEn(write_en),
          readData(read_data), readData1(read_data1), done(done),
          width(width), name(name)
    {
        uint64_t size = 1;
        for (uint64_t d : this->dims) // parameter was moved from
            size *= d;
        data.assign(size, 0);
    }

    uint64_t
    flatAddr(const uint64_t *vals, const std::vector<uint32_t> &ports)
        const
    {
        uint64_t addr = 0;
        for (size_t i = 0; i < ports.size(); ++i)
            addr = addr * dims[i] + vals[ports[i]];
        return addr;
    }

    void
    evalComb(const uint64_t *i, uint64_t *o) const override
    {
        uint64_t addr = flatAddr(i, addrs);
        o[readData] = addr < data.size() ? data[addr] : 0;
        uint64_t addr1 = flatAddr(i, addrs1);
        o[readData1] = addr1 < data.size() ? data[addr1] : 0;
        o[done] = donePulse ? 1 : 0;
    }

    void
    clock(const uint64_t *vals) override
    {
        if (vals[writeEn] & 1) {
            uint64_t addr = flatAddr(vals, addrs);
            if (addr >= data.size()) {
                fatal("memory ", name, ": write to out-of-bounds address ",
                      addr, " (size ", data.size(), ")");
            }
            data[addr] = truncate(vals[writeData], width);
            donePulse = true;
        } else {
            donePulse = false;
        }
    }

    void
    reset() override
    {
        donePulse = false;
    }

    std::vector<uint64_t> *memory() override { return &data; }

    /// Reads are combinational in the address ports; writes are clocked.
    ModelDeps
    deps() const override
    {
        ModelDeps d;
        d.outputs = {readData, readData1, done};
        for (uint32_t a : addrs)
            d.combEdges.push_back({a, {readData}});
        for (uint32_t a : addrs1)
            d.combEdges.push_back({a, {readData1}});
        d.stateful = true;
        return d;
    }

  private:
    std::vector<uint32_t> addrs, addrs1;
    std::vector<uint64_t> dims;
    uint32_t writeData, writeEn, readData, readData1, done;
    Width width;
    std::string name;
    std::vector<uint64_t> data;
    bool donePulse = false;
};

/**
 * Fixed-latency pipelined binary operators (std_mult_pipe, std_div_pipe).
 * Results latch when the countdown expires and persist on the outputs.
 */
class PipeModel final : public PrimModel
{
  public:
    enum class Op { Mult, DivQuotRem };

    PipeModel(Op op, int64_t latency, uint32_t l, uint32_t r, uint32_t go,
              std::vector<uint32_t> outs, uint32_t done, Width width)
        : op(op), latency(latency), l(l), r(r), go(go),
          outs(std::move(outs)), done(done), width(width)
    {
        results.assign(this->outs.size(), 0);
    }

    void
    evalComb(const uint64_t *, uint64_t *o) const override
    {
        for (size_t i = 0; i < outs.size(); ++i)
            o[outs[i]] = results[i];
        o[done] = donePulse ? 1 : 0;
    }

    ModelDeps
    deps() const override
    {
        ModelDeps d;
        d.outputs = outs;
        d.outputs.push_back(done);
        d.stateful = true;
        return d;
    }

    void
    clock(const uint64_t *vals) override
    {
        donePulse = false;
        if (busy) {
            if (--remaining == 0) {
                finish();
                busy = false;
                donePulse = true;
            }
        } else if (vals[go] & 1) {
            opA = vals[l];
            opB = vals[r];
            if (latency <= 1) {
                finish();
                donePulse = true;
            } else {
                busy = true;
                remaining = latency - 1;
            }
        }
    }

    void
    reset() override
    {
        busy = false;
        donePulse = false;
        remaining = 0;
        results.assign(outs.size(), 0);
    }

  private:
    void
    finish()
    {
        switch (op) {
          case Op::Mult:
            results[0] = truncate(opA * opB, width);
            break;
          case Op::DivQuotRem:
            if (opB == 0) {
                // Deterministic stand-in for hardware "undefined".
                results[0] = truncate(~uint64_t(0), width);
                results[1] = truncate(opA, width);
            } else {
                results[0] = truncate(opA / opB, width);
                results[1] = truncate(opA % opB, width);
            }
            break;
        }
    }

    Op op;
    int64_t latency;
    uint32_t l, r, go;
    std::vector<uint32_t> outs;
    uint32_t done;
    Width width;
    bool busy = false, donePulse = false;
    int64_t remaining = 0;
    uint64_t opA = 0, opB = 0;
    std::vector<uint64_t> results;
};

/**
 * std_sqrt: iterative integer square root with data-dependent latency
 * (one cycle per result bit pair plus one). Exercises latency-insensitive
 * compilation: this primitive carries no "static" attribute.
 */
class SqrtModel final : public PrimModel
{
  public:
    SqrtModel(uint32_t in, uint32_t go, uint32_t out, uint32_t done,
              Width width)
        : in(in), go(go), out(out), done(done), width(width)
    {}

    void
    evalComb(const uint64_t *, uint64_t *o) const override
    {
        o[out] = result;
        o[done] = donePulse ? 1 : 0;
    }

    ModelDeps
    deps() const override
    {
        return {{out, done}, {}, true};
    }

    void
    clock(const uint64_t *vals) override
    {
        donePulse = false;
        if (busy) {
            if (--remaining == 0) {
                result = truncate(isqrt(operand), width);
                busy = false;
                donePulse = true;
            }
        } else if (vals[go] & 1) {
            operand = vals[in];
            int64_t latency = 1 + bitsNeeded(operand) / 2;
            busy = true;
            remaining = latency;
        }
    }

    void
    reset() override
    {
        busy = false;
        donePulse = false;
        result = 0;
    }

  private:
    uint32_t in, go, out, done;
    Width width;
    bool busy = false, donePulse = false;
    int64_t remaining = 0;
    uint64_t operand = 0, result = 0;
};

} // namespace

uint64_t
isqrt(uint64_t v)
{
    if (v == 0)
        return 0;
    uint64_t x = v, y = (x + 1) / 2;
    while (y < x) {
        x = y;
        y = (x + v / x) / 2;
    }
    return x;
}

std::unique_ptr<PrimModel>
makeModel(const Cell &cell, const PortResolver &resolve)
{
    const std::string &t = cell.type();
    const auto &params = cell.params();
    auto w = [&params](size_t i) { return static_cast<Width>(params[i]); };

    if (t == "std_const") {
        return std::make_unique<ConstModel>(resolve("out"),
                                            truncate(params[1], w(0)));
    }
    if (t == "std_wire") {
        return std::make_unique<UnaryModel>(UnaryModel::Op::Wire,
                                            resolve("in"), resolve("out"),
                                            w(0));
    }
    if (t == "std_not") {
        return std::make_unique<UnaryModel>(UnaryModel::Op::Not,
                                            resolve("in"), resolve("out"),
                                            w(0));
    }
    if (t == "std_slice" || t == "std_pad") {
        return std::make_unique<UnaryModel>(
            t == "std_slice" ? UnaryModel::Op::Slice : UnaryModel::Op::Pad,
            resolve("in"), resolve("out"), w(1));
    }
    static const std::map<std::string, BinModel::Op> bin_ops = {
        {"std_add", BinModel::Op::Add}, {"std_sub", BinModel::Op::Sub},
        {"std_and", BinModel::Op::And}, {"std_or", BinModel::Op::Or},
        {"std_xor", BinModel::Op::Xor}, {"std_lsh", BinModel::Op::Lsh},
        {"std_rsh", BinModel::Op::Rsh},
    };
    if (auto it = bin_ops.find(t); it != bin_ops.end()) {
        return std::make_unique<BinModel>(it->second, resolve("left"),
                                          resolve("right"), resolve("out"),
                                          w(0));
    }
    static const std::map<std::string, CmpModel::Op> cmp_ops = {
        {"std_eq", CmpModel::Op::Eq}, {"std_neq", CmpModel::Op::Neq},
        {"std_lt", CmpModel::Op::Lt}, {"std_gt", CmpModel::Op::Gt},
        {"std_le", CmpModel::Op::Le}, {"std_ge", CmpModel::Op::Ge},
    };
    if (auto it = cmp_ops.find(t); it != cmp_ops.end()) {
        return std::make_unique<CmpModel>(it->second, resolve("left"),
                                          resolve("right"), resolve("out"));
    }
    if (t == "std_reg") {
        return std::make_unique<RegModel>(resolve("in"), resolve("write_en"),
                                          resolve("out"), resolve("done"),
                                          w(0));
    }
    if (t == "std_mem_d1") {
        return std::make_unique<MemModel>(
            std::vector<uint32_t>{resolve("addr0")},
            std::vector<uint32_t>{resolve("addr0_1")},
            std::vector<uint64_t>{params[1]}, resolve("write_data"),
            resolve("write_en"), resolve("read_data"),
            resolve("read_data_1"), resolve("done"), w(0), cell.name());
    }
    if (t == "std_mem_d2") {
        return std::make_unique<MemModel>(
            std::vector<uint32_t>{resolve("addr0"), resolve("addr1")},
            std::vector<uint32_t>{resolve("addr0_1"),
                                  resolve("addr1_1")},
            std::vector<uint64_t>{params[1], params[2]},
            resolve("write_data"), resolve("write_en"),
            resolve("read_data"), resolve("read_data_1"),
            resolve("done"), w(0), cell.name());
    }
    if (t == "std_mult_pipe") {
        return std::make_unique<PipeModel>(
            PipeModel::Op::Mult, multLatency, resolve("left"),
            resolve("right"), resolve("go"),
            std::vector<uint32_t>{resolve("out")}, resolve("done"), w(0));
    }
    if (t == "std_div_pipe") {
        return std::make_unique<PipeModel>(
            PipeModel::Op::DivQuotRem, divLatency, resolve("left"),
            resolve("right"), resolve("go"),
            std::vector<uint32_t>{resolve("out_quotient"),
                                  resolve("out_remainder")},
            resolve("done"), w(0));
    }
    if (t == "std_sqrt") {
        return std::make_unique<SqrtModel>(resolve("in"), resolve("go"),
                                           resolve("out"), resolve("done"),
                                           w(0));
    }
    fatal("no simulation model for primitive ", t);
}

} // namespace calyx::sim
