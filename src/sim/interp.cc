#include "sim/interp.h"

#include "support/error.h"

namespace calyx::sim {

/** Runtime state for one control node. */
struct Interp::ExecNode
{
    static constexpr uint32_t noGroup = 0xFFFFFFFF;

    const Control *ctrl = nullptr;
    const SimProgram::Instance *inst = nullptr;

    enum class Phase { Run, Cond, Body };
    Phase phase = Phase::Run;

    // Per-cycle hot-path data, resolved once when the node is entered so
    // collect()/advance() never touch string-keyed maps.
    uint32_t groupId = noGroup;     ///< Enable: dense group id.
    uint32_t condGroupId = noGroup; ///< If/While: cond group id.
    uint32_t condPort = 0;          ///< If/While: condition port id.

    size_t idx = 0;      // seq: current child index
    bool finished = false;
    std::vector<std::unique_ptr<ExecNode>> children;
};

/** Runtime state for a sub-component instance with a control program. */
struct Interp::InstanceExec
{
    const SimProgram::Instance *inst = nullptr;

    enum class State { Idle, Running, DonePulse };
    State state = State::Idle;
    std::unique_ptr<ExecNode> root;
};

Interp::Interp(const SimProgram &prog, Engine engine)
    : prog(&prog), stateVal(prog, engine)
{
    if (engine == Engine::Compiled) {
        // The interpreter activates per-group assignment sets and
        // forces group holes cycle by cycle; the generated module
        // hard-codes the full continuous set. Only lowered programs
        // (cycle_sim.h) can run compiled.
        fatal("the control interpreter cannot use the compiled engine; "
              "lower the program first or pick jacobi/levelized");
    }
    for (const auto &sub : prog.root().subs)
        gatherInstances(*sub);
}

Interp::~Interp() = default;

void
Interp::gatherInstances(const SimProgram::Instance &inst)
{
    if (inst.comp->control().kind() != Control::Kind::Empty) {
        auto ie = std::make_unique<InstanceExec>();
        ie->inst = &inst;
        instances.push_back(std::move(ie));
    }
    for (const auto &sub : inst.subs)
        gatherInstances(*sub);
}

std::unique_ptr<Interp::ExecNode>
Interp::begin(const Control &ctrl, const SimProgram::Instance &inst)
{
    auto node = std::make_unique<ExecNode>();
    node->ctrl = &ctrl;
    node->inst = &inst;
    switch (ctrl.kind()) {
      case Control::Kind::Empty:
        node->finished = true;
        break;
      case Control::Kind::Enable:
        node->groupId = inst.groupId(cast<Enable>(ctrl).group());
        break;
      case Control::Kind::Seq: {
        const auto &stmts = cast<Seq>(ctrl).stmts();
        node->idx = 0;
        // Enter the first non-trivial child.
        while (node->idx < stmts.size()) {
            auto child = begin(*stmts[node->idx], inst);
            if (!child->finished) {
                node->children.clear();
                node->children.push_back(std::move(child));
                break;
            }
            ++node->idx;
        }
        if (node->idx >= stmts.size())
            node->finished = true;
        break;
      }
      case Control::Kind::Par: {
        bool all_done = true;
        for (const auto &stmt : cast<Par>(ctrl).stmts()) {
            auto child = begin(*stmt, inst);
            all_done = all_done && child->finished;
            node->children.push_back(std::move(child));
        }
        node->finished = all_done;
        break;
      }
      case Control::Kind::If:
      case Control::Kind::While: {
        node->phase = ExecNode::Phase::Cond;
        const std::string &cg =
            ctrl.kind() == Control::Kind::If
                ? cast<If>(ctrl).condGroup()
                : cast<While>(ctrl).condGroup();
        if (!cg.empty())
            node->condGroupId = inst.groupId(cg);
        const PortRef &cp = ctrl.kind() == Control::Kind::If
                                ? cast<If>(ctrl).condPort()
                                : cast<While>(ctrl).condPort();
        node->condPort = condPortId(cp, inst);
        break;
      }
    }
    return node;
}

void
Interp::collect(ExecNode &node)
{
    if (node.finished)
        return;
    switch (node.ctrl->kind()) {
      case Control::Kind::Empty:
        return;
      case Control::Kind::Enable:
        stateVal.activate(node.inst->groupAssigns[node.groupId]);
        stateVal.force(node.inst->groupHoles[node.groupId].first, 1);
        return;
      case Control::Kind::Seq:
        if (!node.children.empty())
            collect(*node.children[0]);
        return;
      case Control::Kind::Par:
        for (auto &c : node.children) {
            if (!c->finished)
                collect(*c);
        }
        return;
      case Control::Kind::If:
      case Control::Kind::While: {
        if (node.phase == ExecNode::Phase::Cond) {
            if (node.condGroupId != ExecNode::noGroup) {
                stateVal.activate(
                    node.inst->groupAssigns[node.condGroupId]);
                stateVal.force(
                    node.inst->groupHoles[node.condGroupId].first, 1);
            }
        } else if (!node.children.empty()) {
            collect(*node.children[0]);
        }
        return;
      }
    }
}

bool
Interp::advance(ExecNode &node)
{
    if (node.finished)
        return true;
    switch (node.ctrl->kind()) {
      case Control::Kind::Empty:
        node.finished = true;
        return true;
      case Control::Kind::Enable: {
        uint32_t done = node.inst->groupHoles[node.groupId].second;
        if (stateVal.value(done) & 1)
            node.finished = true;
        return node.finished;
      }
      case Control::Kind::Seq: {
        const auto &stmts = cast<Seq>(*node.ctrl).stmts();
        if (!node.children.empty() && advance(*node.children[0])) {
            ++node.idx;
            node.children.clear();
            while (node.idx < stmts.size()) {
                auto child = begin(*stmts[node.idx], *node.inst);
                if (!child->finished) {
                    node.children.push_back(std::move(child));
                    break;
                }
                ++node.idx;
            }
            if (node.idx >= stmts.size())
                node.finished = true;
        }
        return node.finished;
      }
      case Control::Kind::Par: {
        bool all_done = true;
        for (auto &c : node.children) {
            if (!c->finished)
                advance(*c);
            all_done = all_done && c->finished;
        }
        node.finished = all_done;
        return node.finished;
      }
      case Control::Kind::If: {
        const auto &stmt = cast<If>(*node.ctrl);
        if (node.phase == ExecNode::Phase::Cond) {
            bool cond_done = true;
            if (node.condGroupId != ExecNode::noGroup) {
                uint32_t done =
                    node.inst->groupHoles[node.condGroupId].second;
                cond_done = stateVal.value(done) & 1;
            }
            if (cond_done) {
                uint64_t v = stateVal.value(node.condPort);
                const Control &branch =
                    (v & 1) ? stmt.trueBranch() : stmt.falseBranch();
                auto child = begin(branch, *node.inst);
                if (child->finished) {
                    node.finished = true;
                } else {
                    node.phase = ExecNode::Phase::Body;
                    node.children.clear();
                    node.children.push_back(std::move(child));
                }
            }
            return node.finished;
        }
        if (advance(*node.children[0]))
            node.finished = true;
        return node.finished;
      }
      case Control::Kind::While: {
        const auto &stmt = cast<While>(*node.ctrl);
        if (node.phase == ExecNode::Phase::Cond) {
            bool cond_done = true;
            if (node.condGroupId != ExecNode::noGroup) {
                uint32_t done =
                    node.inst->groupHoles[node.condGroupId].second;
                cond_done = stateVal.value(done) & 1;
            }
            if (cond_done) {
                uint64_t v = stateVal.value(node.condPort);
                if (v & 1) {
                    auto child = begin(stmt.body(), *node.inst);
                    if (child->finished) {
                        // Empty body: re-run the condition next cycle.
                        node.phase = ExecNode::Phase::Cond;
                    } else {
                        node.phase = ExecNode::Phase::Body;
                        node.children.clear();
                        node.children.push_back(std::move(child));
                    }
                } else {
                    node.finished = true;
                }
            }
            return node.finished;
        }
        if (advance(*node.children[0])) {
            node.phase = ExecNode::Phase::Cond;
            node.children.clear();
        }
        return node.finished;
      }
    }
    panic("bad control kind");
}

uint32_t
Interp::condPortId(const PortRef &ref, const SimProgram::Instance &inst)
{
    // Resolve through the same naming scheme SimProgram used.
    switch (ref.kind) {
      case PortRef::Kind::Cell:
        return prog->portId(inst.path + ref.parent + "." + ref.port);
      case PortRef::Kind::This: {
        std::string path =
            inst.path.empty()
                ? ref.port.str()
                : inst.path.substr(0, inst.path.size() - 1) + "." + ref.port;
        return prog->portId(path);
      }
      case PortRef::Kind::Hole:
        return prog->portId(inst.path + ref.parent + "[" + ref.port + "]");
      case PortRef::Kind::Const:
        fatal("interp: constant condition port");
    }
    panic("bad PortRef kind");
}

void
Interp::activateContinuousRec(const SimProgram::Instance &inst)
{
    stateVal.activate(inst.continuous);
    for (const auto &sub : inst.subs)
        activateContinuousRec(*sub);
}

uint64_t
Interp::run(uint64_t max_cycles)
{
    stateVal.reset();
    const SimProgram::Instance &top = prog->root();
    auto root = begin(top.comp->control(), top);

    uint64_t cycles = 0;
    while (!root->finished) {
        if (++cycles > max_cycles)
            fatal("interp: exceeded ", max_cycles, " cycles");
        stateVal.beginCycle();
        stateVal.force(top.goPort, 1);
        activateContinuousRec(top);
        collect(*root);
        for (auto &ie : instances) {
            if (ie->state == InstanceExec::State::Running)
                collect(*ie->root);
            else if (ie->state == InstanceExec::State::DonePulse)
                stateVal.force(ie->inst->donePort, 1);
        }
        stateVal.comb();

        advance(*root);
        for (auto &ie : instances) {
            switch (ie->state) {
              case InstanceExec::State::Idle:
                if (stateVal.value(ie->inst->goPort) & 1) {
                    ie->root = begin(ie->inst->comp->control(), *ie->inst);
                    ie->state = ie->root->finished
                                    ? InstanceExec::State::DonePulse
                                    : InstanceExec::State::Running;
                }
                break;
              case InstanceExec::State::Running:
                if (advance(*ie->root))
                    ie->state = InstanceExec::State::DonePulse;
                break;
              case InstanceExec::State::DonePulse:
                ie->state = InstanceExec::State::Idle;
                break;
            }
        }
        stateVal.clock();
    }
    stateVal.finishObservers(cycles);
    return cycles;
}

} // namespace calyx::sim
