#ifndef CALYX_SIM_BATCH_H
#define CALYX_SIM_BATCH_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/env.h"

namespace calyx::sim {

class CompiledModule;
struct PartitionPlan;
class PartitionRunner;

/**
 * One independent stimulus set for a batched run: initial memory images
 * by hierarchical cell path (the same cells workloads::pokeInputs
 * seeds). Memories not named start zeroed; images shorter than the
 * memory pad with zeros. Registers always start at zero, exactly like
 * a scalar CycleSim::run() after reset().
 */
struct Stimulus
{
    std::vector<std::pair<std::string, std::vector<uint64_t>>> mems;
};

/** Final architectural state and cycle count of one retired lane. */
struct LaneResult
{
    uint64_t cycles = 0;
    /// Final register values, register-slot order (BatchRunner::regPaths).
    std::vector<uint64_t> regs;
    /// Final memory images, memory-slot order (BatchRunner::memPaths).
    std::vector<std::vector<uint64_t>> mems;
};

struct BatchOptions
{
    Engine engine = Engine::Compiled;
    /**
     * Worker threads. Normally tiles are spread over them (1 = run on
     * the caller); when a batch has a single tile (notably batch size
     * 1 — a serve run request) the threads move *inside* the tile
     * instead, running the macro-task partition plan (sim/partition.h)
     * so a lone stimulus still uses the machine. The two levels never
     * stack: inner partitioning engages only when the outer tile loop
     * is serial, so occupancy stays at `threads` either way (see
     * docs/simulation.md "Partitioned execution").
     */
    unsigned threads = 1;
    /**
     * Lanes per tile. A batch is cut into tiles of at most this many
     * lanes; each tile is one schedule walk (levelized) or one lane
     * module pass (compiled) and one work item for the thread pool.
     *
     * The compiled engine runs at this width *fixed*: one resident
     * JIT module (compiled for exactly laneTile lanes) serves every
     * batch size, with short batches padding dead lanes — a serve
     * process never recompiles because request shapes vary, at the
     * cost of single-stimulus runs paying a full tile pass. 16 lanes
     * is the measured sweet spot on AVX-512 hosts: two 8×u64 vectors
     * per plane op, and a gemm-sized working set still L1-resident.
     * The levelized engine narrows tiles to the batch instead (its
     * interpreter cost is linear in live lanes, so padding only
     * wastes work).
     */
    uint32_t laneTile = 16;
    uint64_t maxCycles = 50'000'000;
};

/**
 * Batched lane-parallel execution of one netlist over many independent
 * stimulus sets (the ROADMAP's traffic-scale throughput item).
 *
 * Port values become lane arrays: the compiled engine runs a lane
 * module whose generated statements loop over a dense SoA plane
 * (`vals[port * lanes + lane]`, emit/cppsim.h CppSimOptions::lanes);
 * the levelized engine walks one shared dirty-node schedule over
 * lane-major value slices, with a private PrimModel set per lane for
 * stateful storage. Either way one walk of the Tarjan-condensed
 * schedule advances every lane in the tile.
 *
 * Lane divergence is handled by done-mask retirement: each cycle every
 * live lane evaluates, lanes whose `done` settles high retire
 * independently — their cycle count and architectural state snapshot
 * at exactly the point a scalar CycleSim::run() would return — and
 * their `go` drops so the retired design idles while siblings run on.
 * Per-lane results are bit-identical to scalar runs by construction;
 * tests/test_batch_sim.cc holds every lane of a batch to that.
 *
 * Tiles own disjoint state, so they parallelize over the work-stealing
 * pool (support/pool.h) without locks.
 *
 * A BatchRunner is resident: construction resolves the schedule, the
 * driver tables, and (compiled engine) the JIT module once, and run()
 * reuses them for every subsequent batch — the object `futil --serve`
 * keeps alive across requests. Construction fatal()s on programs with
 * groups (batching needs fully-lowered programs), on Engine::Jacobi
 * (the oracle stays scalar), and on anything CompiledModule::load
 * rejects. Observers are rejected by design: batched runs have no
 * probe hookup (docs/simulation.md, docs/observability.md).
 */
class BatchRunner
{
  public:
    BatchRunner(const SimProgram &prog, const BatchOptions &opts);
    ~BatchRunner();

    BatchRunner(const BatchRunner &) = delete;
    BatchRunner &operator=(const BatchRunner &) = delete;

    /** Run every stimulus to completion; results in batch order. */
    std::vector<LaneResult> run(const std::vector<Stimulus> &batch);

    /** Cell path per LaneResult::regs slot. */
    const std::vector<std::string> &regPaths() const { return regPathList; }
    /** Cell path per LaneResult::mems slot. */
    const std::vector<std::string> &memPaths() const { return memPathList; }

    /** Flattened word count of memory slot `m`. */
    uint64_t memSize(size_t m) const { return memSizes[m]; }

    /** Times a JIT module was loaded (compiled engine; a resident
     * runner serving many batches of one shape loads exactly once). */
    uint64_t moduleLoads() const { return loads; }

    /** True when every load so far was served from the on-disk object
     * cache without invoking the host compiler. */
    bool modulesFromCache() const { return allFromCache; }

    const BatchOptions &options() const { return opts; }

  private:
    struct LevelizedPlan;

    void runCompiledTile(const std::vector<Stimulus> &batch, size_t start,
                         size_t count, uint32_t lanes,
                         const CompiledModule &mod,
                         PartitionRunner *runner,
                         std::vector<LaneResult> &out);
    void runLevelizedTile(const std::vector<Stimulus> &batch, size_t start,
                          size_t count, PartitionRunner *runner,
                          std::vector<LaneResult> &out);
    std::shared_ptr<CompiledModule> moduleFor(uint32_t lanes,
                                              uint32_t partitions);

    /// Per-memory-slot lane image for one stimulus (resolved indices).
    std::vector<std::vector<uint64_t>> seedImages(const Stimulus &s) const;

    const SimProgram *prog;
    BatchOptions opts;

    // Stateful-slot maps, model order (mirrors emit/cppsim.cc).
    std::vector<size_t> regModelIdx, memModelIdx;
    std::vector<std::string> regPathList, memPathList;
    std::vector<uint64_t> memSizes;
    std::map<std::string, size_t> memSlotByPath;

    /// JIT modules by (lanes, partitions) shape.
    std::map<std::pair<uint32_t, uint32_t>, std::shared_ptr<CompiledModule>>
        modules;
    uint64_t loads = 0;
    bool allFromCache = true;

    std::unique_ptr<LevelizedPlan> plan; ///< Levelized engine only.

    /// Intra-tile macro-task plan, built lazily the first time a run
    /// has a single tile and threads > 1 (see BatchOptions::threads).
    std::unique_ptr<PartitionPlan> innerPlan;
    std::unique_ptr<PartitionRunner> innerRunner;
};

/** One-shot convenience over a temporary BatchRunner. */
std::vector<LaneResult> runBatch(const SimProgram &prog,
                                 const std::vector<Stimulus> &batch,
                                 const BatchOptions &opts);

} // namespace calyx::sim

#endif // CALYX_SIM_BATCH_H
