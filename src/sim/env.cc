#include "sim/env.h"

#include <algorithm>
#include <cstring>

#include "obs/observer.h"
#include "sim/compiled.h"
#include "sim/partition.h"
#include "sim/schedule.h"
#include "support/error.h"
#include "support/pool.h"
#include "support/text.h"

namespace calyx::sim {

std::vector<std::vector<uint64_t>>
archState(const SimProgram &prog)
{
    std::vector<std::vector<uint64_t>> state;
    for (const auto &m : prog.models()) {
        if (auto rv = m->registerValue())
            state.push_back({*rv});
        else if (auto *mem = m->memory())
            state.push_back(*mem);
    }
    return state;
}

const std::vector<EngineInfo> &
engineInfos()
{
    static const std::vector<EngineInfo> infos = {
        {Engine::Jacobi, "jacobi",
         "reference fixed-point engine (the oracle)"},
        {Engine::Levelized, "levelized",
         "statically scheduled event-driven engine"},
        {Engine::Compiled, "compiled",
         "codegen the schedule to C++ and JIT-build it "
         "(needs a host compiler)"},
    };
    return infos;
}

std::vector<std::string>
engineNames()
{
    std::vector<std::string> names;
    names.reserve(engineInfos().size());
    for (const EngineInfo &info : engineInfos())
        names.push_back(info.name);
    return names;
}

const char *
engineName(Engine engine)
{
    for (const EngineInfo &info : engineInfos()) {
        if (info.engine == engine)
            return info.name;
    }
    panic("engineName: bad engine");
}

Engine
parseEngine(const std::string &name)
{
    std::string options;
    for (const EngineInfo &info : engineInfos()) {
        if (name == info.name)
            return info.engine;
        if (!options.empty())
            options += ", ";
        options += info.name;
    }
    std::string close = suggestClosest(name, engineNames());
    if (close.empty()) {
        fatal("unknown simulation engine '", name, "' (options: ", options,
              ")");
    }
    fatal("unknown simulation engine '", name, "' (did you mean '", close,
          "'? options: ", options, ")");
}

bool
SExpr::eval(const uint64_t *vals) const
{
    if (nodes.empty())
        return true;
    if (depth <= sexprInlineDepth) {
        uint64_t stack[sexprInlineDepth];
        return evalWith(vals, stack);
    }
    // Pathological guard: size heap scratch to the exact depth computed
    // at compile time instead of overflowing the inline buffer.
    std::vector<uint64_t> stack(depth);
    return evalWith(vals, stack.data());
}

bool
SExpr::evalWith(const uint64_t *vals, uint64_t *stack) const
{
    // Stack machine over the postorder array. Depth was bounded when the
    // guard was compiled, so no per-node overflow check is needed here.
    size_t sp = 0;
    for (const Node &n : nodes) {
        switch (n.op) {
          case Op::True:
            stack[sp++] = 1;
            break;
          case Op::Port:
            stack[sp++] = vals[n.a] & 1;
            break;
          case Op::Not:
            stack[sp - 1] = !stack[sp - 1];
            break;
          case Op::And:
            --sp;
            stack[sp - 1] = stack[sp - 1] && stack[sp];
            break;
          case Op::Or:
            --sp;
            stack[sp - 1] = stack[sp - 1] || stack[sp];
            break;
          default: {
            uint64_t a = n.aImm ? n.immA : vals[n.a];
            uint64_t b = n.bImm ? n.immB : vals[n.b];
            bool v = false;
            switch (n.op) {
              case Op::Eq:
                v = a == b;
                break;
              case Op::Neq:
                v = a != b;
                break;
              case Op::Lt:
                v = a < b;
                break;
              case Op::Gt:
                v = a > b;
                break;
              case Op::Leq:
                v = a <= b;
                break;
              case Op::Geq:
                v = a >= b;
                break;
              default:
                panic("bad SExpr op " +
                      std::to_string(static_cast<int>(n.op)));
            }
            stack[sp++] = v ? 1 : 0;
            break;
          }
        }
    }
    return stack[0] != 0;
}

void
SExpr::computeDepth()
{
    uint32_t cur = 0;
    depth = 0;
    for (const Node &n : nodes) {
        switch (n.op) {
          case Op::Not:
            break; // pops one, pushes one
          case Op::And:
          case Op::Or:
            --cur; // pops two, pushes one
            break;
          default:
            ++cur; // True/Port/Cmp leaves push one
            break;
        }
        depth = std::max(depth, cur);
    }
}

void
SExpr::collectPorts(std::vector<uint32_t> &ports) const
{
    for (const Node &n : nodes) {
        switch (n.op) {
          case Op::Port:
            ports.push_back(n.a);
            break;
          case Op::Eq:
          case Op::Neq:
          case Op::Lt:
          case Op::Gt:
          case Op::Leq:
          case Op::Geq:
            if (!n.aImm)
                ports.push_back(n.a);
            if (!n.bImm)
                ports.push_back(n.b);
            break;
          default:
            break;
        }
    }
}

uint32_t
SimProgram::Instance::groupId(Symbol name) const
{
    auto it = groupIndex.find(name);
    if (it == groupIndex.end()) {
        fatal("simulator: unknown group ", name, " in component ",
              comp->name());
    }
    return it->second;
}

SimProgram::SimProgram(const Context &ctx, Symbol top)
    : ctx(&ctx)
{
    rootInst = std::make_unique<Instance>();
    rootInst->path = "";
    buildInstance(*rootInst, ctx.component(top));
}

SimProgram::~SimProgram() = default;

uint32_t
SimProgram::addPort(Symbol path)
{
    auto [it, inserted] =
        portIds.emplace(path, static_cast<uint32_t>(portNames.size()));
    if (inserted)
        portNames.push_back(path);
    return it->second;
}

uint32_t
SimProgram::portId(Symbol path) const
{
    auto it = portIds.find(path);
    if (it == portIds.end()) {
        std::vector<std::string> known;
        known.reserve(portNames.size());
        for (Symbol name : portNames)
            known.push_back(name.str());
        std::string close = suggestClosest(path.str(), known);
        if (close.empty())
            fatal("simulator: unknown port path ", path);
        fatal("simulator: unknown port path ", path, " (did you mean '",
              close, "'?)");
    }
    return it->second;
}

PrimModel *
SimProgram::findModel(Symbol cell_path) const
{
    auto it = modelIndex.find(cell_path);
    if (it == modelIndex.end()) {
        // One-shot diagnostic path: mirror the pass/backend registries'
        // did-you-mean UX for misspelled harness cell paths.
        std::vector<std::string> known;
        known.reserve(modelIndex.size());
        for (const auto &[name, model] : modelIndex) {
            (void)model;
            known.push_back(name.str());
        }
        std::string close = suggestClosest(cell_path.str(), known);
        if (close.empty())
            fatal("simulator: unknown cell path ", cell_path);
        fatal("simulator: unknown cell path ", cell_path,
              " (did you mean '", close, "'?)");
    }
    return it->second;
}

std::vector<Symbol>
SimProgram::modelPaths() const
{
    std::vector<Symbol> out;
    out.reserve(modelList.size());
    std::function<void(const Instance &)> walk = [&](const Instance &inst) {
        size_t sub = 0;
        for (const auto &cell : inst.comp->cells()) {
            if (cell->isPrimitive())
                out.push_back(inst.path + cell->name());
            else
                walk(*inst.subs[sub++]);
        }
    };
    walk(*rootInst);
    if (out.size() != modelList.size())
        panic("simulator: model path walk does not match model list");
    return out;
}

std::vector<std::unique_ptr<PrimModel>>
SimProgram::newModelSet() const
{
    std::vector<std::unique_ptr<PrimModel>> out;
    out.reserve(modelList.size());
    std::function<void(const Instance &)> walk = [&](const Instance &inst) {
        size_t sub = 0;
        for (const auto &cell : inst.comp->cells()) {
            if (cell->isPrimitive()) {
                std::string prefix = inst.path;
                auto resolver = [&](const std::string &port) {
                    return portId(prefix + cell->name() + "." + port);
                };
                out.push_back(makeModel(*cell, resolver));
            } else {
                walk(*inst.subs[sub++]);
            }
        }
    };
    walk(*rootInst);
    if (out.size() != modelList.size())
        panic("simulator: model set walk does not match model list");
    return out;
}

void
SimProgram::forEachAssignment(
    const std::function<void(const SAssign &, bool)> &fn) const
{
    std::function<void(const Instance &)> walk =
        [&](const Instance &inst) {
            for (const SAssign &a : inst.continuous)
                fn(a, true);
            for (const auto &vec : inst.groupAssigns) {
                for (const SAssign &a : vec)
                    fn(a, false);
            }
            for (const auto &sub : inst.subs)
                walk(*sub);
        };
    walk(*rootInst);
}

const SimSchedule &
SimProgram::schedule() const
{
    if (!sched)
        sched = std::make_unique<SimSchedule>(*this);
    return *sched;
}

std::shared_ptr<CompiledModule>
SimProgram::compiledModule(bool probe, uint32_t partitions) const
{
    if (partitions > 1) {
        // The partitioned variant is never probed: observers are
        // notified host-side after the partitions join, so one module
        // serves observed and unobserved partitioned runs alike.
        if (!compiledPart)
            compiledPart =
                CompiledModule::load(*this, false, 1, partitions);
        return compiledPart;
    }
    auto &slot = compiled[probe ? 1 : 0];
    if (!slot)
        slot = CompiledModule::load(*this, probe);
    return slot;
}

bool
SimProgram::hasGroups() const
{
    std::function<bool(const Instance &)> walk =
        [&](const Instance &inst) {
            if (inst.hasGroups())
                return true;
            for (const auto &sub : inst.subs) {
                if (walk(*sub))
                    return true;
            }
            return false;
        };
    return walk(*rootInst);
}

void
SimProgram::buildInstance(Instance &inst, const Component &comp)
{
    inst.comp = &comp;

    // This-instance signature ports. For the top instance these are fresh
    // ("go", "done"); for sub-instances they alias the parent's cell ports
    // ("pe00.go"), which addPort de-duplicates by path.
    for (const auto &p : comp.signature()) {
        std::string path = inst.path.empty()
                               ? p.name.str()
                               : inst.path.substr(0, inst.path.size() - 1) +
                                     "." + p.name;
        uint32_t id = addPort(path);
        if (p.name == "go")
            inst.goPort = id;
        if (p.name == "done")
            inst.donePort = id;
    }

    // Cell ports, models, and sub-instances.
    std::string prefix = inst.path;
    for (const auto &cell : comp.cells()) {
        for (const auto &p : cell->portDefs())
            addPort(prefix + cell->name() + "." + p.name);
        if (cell->isPrimitive()) {
            auto resolver = [&](const std::string &port) {
                return portId(prefix + cell->name() + "." + port);
            };
            auto model = makeModel(*cell, resolver);
            modelIndex[prefix + cell->name()] = model.get();
            modelList.push_back(std::move(model));
        } else {
            auto sub = std::make_unique<Instance>();
            sub->path = prefix + cell->name() + "/";
            // Sub-instance signature ports must resolve to the parent's
            // cell ports: "pe00.go" etc. The path computation in the
            // signature loop above produces exactly those names.
            buildInstance(*sub, ctx->component(cell->type()));
            inst.subs.push_back(std::move(sub));
        }
    }

    // Group holes, with dense group ids in declaration order.
    for (const auto &g : comp.groups()) {
        uint32_t go = addPort(prefix + g->name() + "[go]");
        uint32_t done = addPort(prefix + g->name() + "[done]");
        uint32_t id = static_cast<uint32_t>(inst.groupNames.size());
        inst.groupNames.push_back(g->name());
        inst.groupHoles.push_back({go, done});
        inst.groupIndex[g->name()] = id;
    }

    // Assignments.
    for (const auto &a : comp.continuousAssignments())
        inst.continuous.push_back(compileAssign(inst, a));
    for (const auto &g : comp.groups()) {
        // Mirror the hardware calling convention in the interpreter: a
        // group's body deactivates during its done cycle (CompileControl
        // deasserts go when done is high), otherwise registers with a
        // still-high write enable would commit twice. Combinational
        // groups (done = constant 1) have no state and stay unchanged.
        bool comb_done = false;
        for (const auto &a : g->assignments()) {
            if (a.dst == g->doneHole() && a.guard->isTrue() &&
                a.src.isConst() && a.src.value == 1) {
                comb_done = true;
            }
        }
        GuardPtr not_done =
            Guard::negate(Guard::fromPort(g->doneHole()));
        auto &vec = inst.groupAssigns.emplace_back();
        for (const auto &a : g->assignments()) {
            bool own_done = a.dst == g->doneHole();
            if (comb_done || own_done) {
                vec.push_back(compileAssign(inst, a));
            } else {
                Assignment gated(a.dst, a.src,
                                 Guard::conj(a.guard, not_done));
                vec.push_back(compileAssign(inst, gated));
            }
        }
    }
}

uint32_t
SimProgram::resolve(const Instance &inst, const PortRef &ref)
{
    switch (ref.kind) {
      case PortRef::Kind::This: {
        std::string path =
            inst.path.empty()
                ? ref.port.str()
                : inst.path.substr(0, inst.path.size() - 1) + "." + ref.port;
        return portId(path);
      }
      case PortRef::Kind::Cell:
        return portId(inst.path + ref.parent + "." + ref.port);
      case PortRef::Kind::Hole:
        return portId(inst.path + ref.parent + "[" + ref.port + "]");
      case PortRef::Kind::Const:
        panic("resolve() on a constant");
    }
    panic("bad PortRef kind");
}

SAssign
SimProgram::compileAssign(const Instance &inst, const Assignment &a)
{
    SAssign out;
    out.dst = resolve(inst, a.dst);
    out.guard = compileGuard(inst, a.guard);
    if (a.src.isConst()) {
        out.srcConst = true;
        out.srcValue = a.src.value;
    } else {
        out.srcPort = resolve(inst, a.src);
    }
    out.id = static_cast<uint32_t>(assignDescs.size());
    assignDescs.push_back(inst.path + a.str());
    return out;
}

namespace {

void
compileGuardInto(const GuardPtr &g,
                 const std::function<uint32_t(const PortRef &)> &resolve,
                 std::vector<SExpr::Node> &nodes)
{
    SExpr::Node n;
    switch (g->kind()) {
      case Guard::Kind::True:
        n.op = SExpr::Op::True;
        nodes.push_back(n);
        return;
      case Guard::Kind::Port:
        n.op = SExpr::Op::Port;
        n.a = resolve(g->port());
        nodes.push_back(n);
        return;
      case Guard::Kind::Not:
        compileGuardInto(g->left(), resolve, nodes);
        n.op = SExpr::Op::Not;
        nodes.push_back(n);
        return;
      case Guard::Kind::And:
      case Guard::Kind::Or:
        compileGuardInto(g->left(), resolve, nodes);
        compileGuardInto(g->right(), resolve, nodes);
        n.op = g->kind() == Guard::Kind::And ? SExpr::Op::And
                                             : SExpr::Op::Or;
        nodes.push_back(n);
        return;
      case Guard::Kind::Cmp: {
        switch (g->cmpOp()) {
          case Guard::CmpOp::Eq:
            n.op = SExpr::Op::Eq;
            break;
          case Guard::CmpOp::Neq:
            n.op = SExpr::Op::Neq;
            break;
          case Guard::CmpOp::Lt:
            n.op = SExpr::Op::Lt;
            break;
          case Guard::CmpOp::Gt:
            n.op = SExpr::Op::Gt;
            break;
          case Guard::CmpOp::Leq:
            n.op = SExpr::Op::Leq;
            break;
          case Guard::CmpOp::Geq:
            n.op = SExpr::Op::Geq;
            break;
        }
        if (g->lhs().isConst()) {
            n.aImm = true;
            n.immA = g->lhs().value;
        } else {
            n.a = resolve(g->lhs());
        }
        if (g->rhs().isConst()) {
            n.bImm = true;
            n.immB = g->rhs().value;
        } else {
            n.b = resolve(g->rhs());
        }
        nodes.push_back(n);
        return;
      }
    }
    panic("bad guard kind");
}

} // namespace

SExpr
SimProgram::compileGuard(const Instance &inst, const GuardPtr &g)
{
    SExpr e;
    if (g->isTrue())
        return e;
    compileGuardInto(
        g, [&](const PortRef &r) { return resolve(inst, r); }, e.nodes);
    e.computeDepth();
    return e;
}

SimState::SimState(const SimProgram &prog, Engine engine)
    : prog(&prog), engineVal(engine)
{
    vals.assign(prog.numPorts(), 0);
    tmp.assign(prog.numPorts(), 0);
    driver.assign(prog.numPorts(), -1);
}

SimState::~SimState()
{
    if (compiledInst)
        compiledMod->freeInstance(compiledInst);
}

void
SimState::reset()
{
    std::fill(vals.begin(), vals.end(), 0);
    for (const auto &m : prog->models())
        m->reset();
    active.clear();
    forces.clear();
    cycleIndex = 0;
    // Forget all incremental levelized state: the next comb() walks the
    // entire schedule once.
    activationValid = false;
    activationCalls.clear();
    prevActivationCalls.clear();
    prevForces.clear();
    // Zero the generated module's internal state (done pulses, pipe
    // countdowns) and re-write constant-folded port values.
    if (compiledInst)
        compiledMod->reset(compiledInst, vals.data());
}

void
SimState::beginCycle()
{
    active.clear();
    std::swap(prevActivationCalls, activationCalls);
    activationCalls.clear();
    std::swap(prevForces, forces);
    forces.clear();
}

void
SimState::activate(const std::vector<SAssign> &assigns)
{
    if (engineVal == Engine::Jacobi) {
        for (const auto &a : assigns)
            active.push_back(&a);
    } else {
        // Record by identity only; the per-port scatter happens lazily
        // in comb() and is skipped when the call sequence repeats.
        activationCalls.push_back(&assigns);
    }
}

void
SimState::force(uint32_t port, uint64_t value)
{
    forces.emplace_back(port, value);
}

void
SimState::setThreads(unsigned n)
{
    n = n ? n : 1;
    if (n == threadsVal)
        return;
    threadsVal = n;
    partPlan.reset();
    partRunner.reset();
    workerScratch.clear();
    if (compiledInst) {
        // The partitioned and plain generated modules are distinct;
        // drop the bound instance so the next comb() reloads the right
        // variant (callers set threads before the first comb()).
        compiledMod->freeInstance(compiledInst);
        compiledInst = nullptr;
    }
}

int
SimState::comb()
{
    int evals;
    switch (engineVal) {
      case Engine::Jacobi:
        evals = combJacobi();
        break;
      case Engine::Levelized:
        evals = threadsVal > 1 ? combPartitioned() : combLevelized();
        break;
      case Engine::Compiled:
        evals = combCompiled();
        break;
      default:
        panic("comb: bad engine");
    }
    if (!observerList.empty()) {
        // The probed compiled module already invoked cycleSettled from
        // inside its eval() (via probeThunk); the interpreting engines
        // notify here. Either way observers see settled, pre-clock-edge
        // values once per cycle.
        if (engineVal != Engine::Compiled || !compiledProbe)
            notifySettled();
        for (obs::SimObserver *o : observerList)
            o->combStats(cycleIndex, evals);
        ++cycleIndex;
    }
    return evals;
}

void
SimState::addObserver(obs::SimObserver *observer)
{
    observerList.push_back(observer);
    if (compiledInst && !compiledProbe && threadsVal <= 1) {
        // A plain (probe-free) module is already bound; drop it so the
        // next comb() reloads the probed variant.
        compiledMod->freeInstance(compiledInst);
        compiledInst = nullptr;
    }
}

void
SimState::notifySettled()
{
    for (obs::SimObserver *o : observerList)
        o->cycleSettled(cycleIndex, vals.data());
}

void
SimState::probeThunk(void *ctx, const uint64_t *vals)
{
    (void)vals; // the same array the state owns
    static_cast<SimState *>(ctx)->notifySettled();
}

void
SimState::finishObservers(uint64_t cycles)
{
    for (obs::SimObserver *o : observerList)
        o->finish(cycles);
}

void
SimState::ensureCompiled()
{
    if (compiledInst)
        return;
    // Partitioned runs never use the probed module: observers are
    // notified host-side after the partitions join (comb() calls
    // notifySettled when compiledProbe is false), which is also the
    // single deterministic drain point --trace/--profile rely on.
    uint32_t partitions =
        threadsVal > 1 ? partitionTarget() : 0;
    bool want_probe = !observerList.empty() && partitions <= 1;
    compiledMod = prog->compiledModule(want_probe, partitions);
    compiledProbe = want_probe && compiledMod->hasProbe();

    if (partitions > 1 && compiledMod->numPartitions() > 1) {
        partPlan = std::make_unique<PartitionPlan>(
            compiledMod->partitionPlan(threadsVal));
        partRunner = std::make_unique<PartitionRunner>(*partPlan);
    }

    // Bind the generated instance's register and memory state to the
    // PrimModel objects' own storage (model order on both sides), so
    // archState(), registerValue(), and harness memory pokes observe
    // the compiled run exactly as they observe an interpreted one.
    std::vector<uint64_t *> regStorage, memStorage;
    for (const auto &m : prog->models()) {
        if (uint64_t *r = m->registerStorage())
            regStorage.push_back(r);
        if (std::vector<uint64_t> *mem = m->memory())
            memStorage.push_back(mem->data());
    }
    if (regStorage.size() != compiledMod->numRegs() ||
        memStorage.size() != compiledMod->numMems()) {
        fatal("compiled engine: module state shape (",
              compiledMod->numRegs(), " regs, ", compiledMod->numMems(),
              " mems) does not match the program (", regStorage.size(),
              " regs, ", memStorage.size(), " mems)");
    }

    compiledInst = compiledMod->newInstance();
    compiledMod->bind(compiledInst, regStorage.data(), memStorage.data());
    if (compiledProbe)
        compiledMod->setProbe(compiledInst, &SimState::probeThunk, this);
    compiledMod->reset(compiledInst, vals.data());

    continuousCount = 0;
    prog->forEachAssignment([&](const SAssign &, bool continuous) {
        if (continuous)
            ++continuousCount;
    });
}

void
SimState::checkCompiledError()
{
    if (const char *err = compiledMod->error(compiledInst))
        fatal(err);
}

int
SimState::combCompiled()
{
    ensureCompiled();

    // The generated eval() hard-codes every continuous assignment as a
    // potential driver, so the cycle's activation set must be exactly
    // the full continuous set (what CycleSim activates). Anything else
    // (e.g. the interpreter's per-group sets) needs an interpreting
    // engine.
    size_t activated = 0;
    for (const std::vector<SAssign> *vec : activationCalls)
        activated += vec->size();
    if (activated != continuousCount) {
        fatal("compiled engine: cycle activated ", activated,
              " assignments but the program has ", continuousCount,
              " continuous ones; group-level activation requires "
              "--sim-engine=jacobi or levelized");
    }

    // Forces only exist for ports eval() does not compute (the cycle
    // driver's top-level go). A force that stops being applied reverts
    // to the undriven default of zero, matching evalPort().
    const unsigned char *driven = compiledMod->driven();
    for (const auto &[port, value] : prevForces) {
        if (!driven[port])
            vals[port] = 0;
    }
    for (const auto &[port, value] : forces) {
        if (driven[port]) {
            fatal("compiled engine: cannot force computed port ",
                  prog->portName(port));
        }
        vals[port] = value;
    }

    if (threadsVal > 1 && partRunner) {
        // Each partition entry point reads only ports its dependency
        // partitions (or earlier cycles) wrote and writes only its own
        // ports; the runner's stamp protocol publishes those writes in
        // dependency order, so the result is bit-identical to eval().
        partRunner->run([&](uint32_t task, unsigned) {
            compiledMod->evalPartition(compiledInst, vals.data(), task);
        });
        checkCompiledError();
        return static_cast<int>(compiledMod->numPartitions());
    }

    compiledMod->eval(compiledInst, vals.data());
    checkCompiledError();
    return 1;
}

int
SimState::combJacobi()
{
    for (int pass = 1; pass <= maxCombPasses; ++pass) {
        // Jacobi pass: compute tmp entirely from vals.
        std::fill(tmp.begin(), tmp.end(), 0);
        for (const auto &m : prog->models())
            m->evalComb(vals.data(), tmp.data());
        for (const auto &[port, value] : forces)
            tmp[port] = value;
        for (const SAssign *a : active) {
            if (a->guard.eval(vals.data()))
                tmp[a->dst] = a->srcConst ? a->srcValue : vals[a->srcPort];
        }
        if (tmp == vals) {
            // Converged: verify the unique-driver requirement (§3.2).
            std::fill(driver.begin(), driver.end(), -1);
            for (const SAssign *a : active) {
                if (!a->guard.eval(vals.data()))
                    continue;
                if (driver[a->dst] >= 0) {
                    fatal("multiple active drivers for port ",
                          prog->portName(a->dst), ":\n  ",
                          prog->assignDesc(driver[a->dst]), "\n  ",
                          prog->assignDesc(a->id));
                }
                driver[a->dst] = static_cast<int32_t>(a->id);
            }
            return pass;
        }
        std::swap(tmp, vals);
    }
    fatal("combinational evaluation did not converge after ",
          maxCombPasses, " passes (combinational loop?)");
}

void
SimState::markDirty(uint32_t port)
{
    uint32_t node = sched->nodeOf(port);
    if (!inQueue[node]) {
        inQueue[node] = 1;
        queue.push(node);
    }
}

void
SimState::markAllDirty()
{
    for (uint32_t n = 0; n < sched->nodes().size(); ++n) {
        if (!inQueue[n]) {
            inQueue[n] = 1;
            queue.push(n);
        }
    }
}

void
SimState::rebuildActiveByPort()
{
    std::swap(activeByPort, oldActiveByPort);
    std::swap(touched, oldTouched);
    // After the swap, activeByPort holds the lists from two rebuilds
    // ago; clear exactly the slots that were populated.
    for (uint32_t p : touched)
        activeByPort[p].clear();
    touched.clear();
    for (const std::vector<SAssign> *vec : activationCalls) {
        for (const SAssign &a : *vec) {
            if (activeByPort[a.dst].empty())
                touched.push_back(a.dst);
            activeByPort[a.dst].push_back(&a);
        }
    }
    // Dirty every port whose potential-driver list changed; ports in
    // oldTouched but not touched fell back to force/model/zero.
    for (uint32_t p : touched) {
        if (activeByPort[p] != oldActiveByPort[p])
            markDirty(p);
    }
    for (uint32_t p : oldTouched) {
        if (activeByPort[p] != oldActiveByPort[p])
            markDirty(p);
    }
}

void
SimState::diffForces()
{
    // Over-approximate: dirty everything forced in either cycle. Force
    // sets are tiny (top go + one hole per active group).
    for (const auto &[port, value] : forces)
        markDirty(port);
    for (const auto &[port, value] : prevForces)
        markDirty(port);
}

uint64_t
SimState::evalPort(uint32_t port, bool check_conflicts)
{
    return evalPort(port, check_conflicts, tmp.data());
}

uint64_t
SimState::evalPort(uint32_t port, bool check_conflicts,
                   uint64_t *scratch)
{
    // Driver priority mirrors the Jacobi pass order: active assignment
    // beats force beats model output beats the zero default.
    const SAssign *winner = nullptr;
    for (const SAssign *a : activeByPort[port]) {
        if (!a->guard.eval(vals.data()))
            continue;
        if (winner && check_conflicts) {
            fatal("multiple active drivers for port ",
                  prog->portName(port), ":\n  ",
                  prog->assignDesc(winner->id), "\n  ",
                  prog->assignDesc(a->id));
        }
        winner = a;
    }
    if (winner)
        return winner->srcConst ? winner->srcValue : vals[winner->srcPort];
    if (forcedStamp[port] == stamp)
        return forcedVal[port];
    if (PrimModel *m = sched->modelOf(port)) {
        // evalComb writes every output of the model into the scratch
        // plane, so concurrent partitioned workers each get their own
        // plane (workerScratch) instead of sharing `tmp`.
        m->evalComb(vals.data(), scratch);
        return scratch[port];
    }
    return 0;
}

void
SimState::evalNode(uint32_t node_index)
{
    const SimSchedule::Node &node = sched->nodes()[node_index];
    const uint32_t *mem = sched->memberPorts().data() + node.first;

    if (!node.cyclic) {
        uint32_t p = mem[0];
        uint64_t nv = evalPort(p, true);
        if (nv != vals[p]) {
            vals[p] = nv;
            for (const uint32_t *q = sched->fanoutBegin(p),
                                *e = sched->fanoutEnd(p);
                 q != e; ++q)
                markDirty(*q);
        }
        return;
    }

    // Non-trivial SCC: bounded local fixed point (Gauss-Seidel over the
    // members, which converges at least as fast as a Jacobi sweep).
    bool changed = true;
    int iter = 0;
    while (changed) {
        if (++iter > maxCombPasses) {
            std::string ports;
            for (uint32_t i = 0; i < node.count; ++i) {
                if (!ports.empty())
                    ports += ", ";
                ports += prog->portName(mem[i]);
            }
            fatal("combinational cycle did not settle after ",
                  maxCombPasses, " iterations; ports on the cycle: ",
                  ports);
        }
        changed = false;
        for (uint32_t i = 0; i < node.count; ++i) {
            uint32_t p = mem[i];
            uint64_t nv = evalPort(p, false);
            if (nv != vals[p]) {
                vals[p] = nv;
                portChanged[p] = 1;
                changed = true;
            }
        }
    }
    // Settled: re-check with conflict detection (values cannot change),
    // then wake external fanouts of members that moved.
    for (uint32_t i = 0; i < node.count; ++i)
        evalPort(mem[i], true);
    for (uint32_t i = 0; i < node.count; ++i) {
        uint32_t p = mem[i];
        if (!portChanged[p])
            continue;
        portChanged[p] = 0;
        for (const uint32_t *q = sched->fanoutBegin(p),
                            *e = sched->fanoutEnd(p);
             q != e; ++q) {
            if (sched->nodeOf(*q) != node_index)
                markDirty(*q);
        }
    }
}

void
SimState::bindSchedule()
{
    if (sched)
        return;
    // First evaluation: bind (and possibly build) the schedule and
    // size the engine's bookkeeping.
    sched = &prog->schedule();
    inQueue.assign(sched->nodes().size(), 0);
    portChanged.assign(prog->numPorts(), 0);
    forcedVal.assign(prog->numPorts(), 0);
    forcedStamp.assign(prog->numPorts(), 0);
    activeByPort.resize(prog->numPorts());
    oldActiveByPort.resize(prog->numPorts());
}

void
SimState::ensurePartitioned()
{
    if (partPlan)
        return;
    partPlan = std::make_unique<PartitionPlan>(buildPartitionPlan(
        *prog, *sched, partitionTarget(), threadsVal));
    partRunner = std::make_unique<PartitionRunner>(*partPlan);
    workerScratch.assign(partPlan->threads,
                         std::vector<uint64_t>(prog->numPorts(), 0));
}

/**
 * evalNode stripped of dirty-cone bookkeeping for the partitioned
 * full walk: every node runs every cycle, so fanout marking buys
 * nothing (and the shared queue would race across workers). The value
 * trajectory — including the SCC Gauss-Seidel iteration order and the
 * settled conflict re-check — is identical to evalNode's, which is
 * what makes partitioned results bit-identical to scalar ones.
 */
void
SimState::evalNodeFull(uint32_t node_index, uint64_t *scratch)
{
    const SimSchedule::Node &node = sched->nodes()[node_index];
    const uint32_t *mem = sched->memberPorts().data() + node.first;

    if (!node.cyclic) {
        uint32_t p = mem[0];
        vals[p] = evalPort(p, true, scratch);
        return;
    }

    bool changed = true;
    int iter = 0;
    while (changed) {
        if (++iter > maxCombPasses) {
            std::string ports;
            for (uint32_t i = 0; i < node.count; ++i) {
                if (!ports.empty())
                    ports += ", ";
                ports += prog->portName(mem[i]);
            }
            fatal("combinational cycle did not settle after ",
                  maxCombPasses, " iterations; ports on the cycle: ",
                  ports);
        }
        changed = false;
        for (uint32_t i = 0; i < node.count; ++i) {
            uint32_t p = mem[i];
            uint64_t nv = evalPort(p, false, scratch);
            if (nv != vals[p]) {
                vals[p] = nv;
                changed = true;
            }
        }
    }
    for (uint32_t i = 0; i < node.count; ++i)
        evalPort(mem[i], true, scratch);
}

int
SimState::combPartitioned()
{
    bindSchedule();
    ensurePartitioned();

    ++stamp;
    for (const auto &[port, value] : forces) {
        forcedVal[port] = value;
        forcedStamp[port] = stamp;
    }

    // The partitioned walk evaluates the full schedule every cycle, so
    // only the per-port active-driver lists need maintaining — no
    // dirty diffing. rebuildActiveByPort still marks nodes dirty as a
    // side effect; drain those marks so a later scalar cycle (or
    // engine switch) starts clean.
    if (!activationValid || activationCalls != prevActivationCalls)
        rebuildActiveByPort();
    activationValid = true;
    while (!queue.empty()) {
        inQueue[queue.top()] = 0;
        queue.pop();
    }

    const PartitionPlan &p = *partPlan;
    partRunner->run([&](uint32_t task, unsigned worker) {
        uint64_t *scratch = workerScratch[worker].data();
        for (uint32_t n : p.tasks[task].nodes)
            evalNodeFull(n, scratch);
    });
    return static_cast<int>(sched->nodes().size());
}

int
SimState::combLevelized()
{
    bindSchedule();

    ++stamp;
    for (const auto &[port, value] : forces) {
        forcedVal[port] = value;
        forcedStamp[port] = stamp;
    }

    if (!activationValid) {
        markAllDirty();
        rebuildActiveByPort();
    } else {
        if (activationCalls != prevActivationCalls)
            rebuildActiveByPort();
        if (forces != prevForces)
            diffForces();
    }
    activationValid = true;

    int evaluated = 0;
    while (!queue.empty()) {
        uint32_t node = queue.top();
        queue.pop();
        inQueue[node] = 0;
        evalNode(node);
        ++evaluated;
    }
    return evaluated;
}

void
SimState::clock()
{
    if (engineVal == Engine::Compiled) {
        // The generated clock code advances every stateful primitive
        // (registers and memories through the bound model storage);
        // calling the models' clock() too would double-advance them.
        ensureCompiled();
        compiledMod->clock(compiledInst, vals.data());
        checkCompiledError();
        return;
    }
    const auto &models = prog->models();
    if (engineVal == Engine::Levelized && threadsVal > 1 && partPlan &&
        partPlan->parallel() && !WorkPool::insideWorker()) {
        // Clock edges are mutually independent: every model reads the
        // shared settled port values and writes only its own private
        // state, so a plain range split over the partition plan's
        // thread count is exact (no ownership or ordering needed).
        // The next comb() walks the full schedule, so the scalar
        // engine's queue seeding below is also unnecessary.
        WorkPool::global().parallelFor(
            models.size(), partPlan->threads,
            [&](size_t i) { models[i]->clock(vals.data()); });
        return;
    }
    for (const auto &m : models)
        m->clock(vals.data());
    if (engineVal == Engine::Levelized && sched) {
        if (threadsVal > 1)
            return; // partitioned comb() re-walks everything
        // Seed the next cycle's event queue: outputs of stateful models
        // whose post-edge value differs from the settled one.
        const auto &stateful = sched->statefulModels();
        for (size_t i = 0; i < stateful.size(); ++i) {
            stateful[i]->evalComb(vals.data(), tmp.data());
            for (uint32_t o : sched->statefulOutputs(i)) {
                if (tmp[o] != vals[o])
                    markDirty(o);
            }
        }
    }
}

} // namespace calyx::sim
