#include "sim/env.h"

#include <cstring>

#include "support/error.h"

namespace calyx::sim {

bool
SExpr::eval(const uint64_t *vals) const
{
    if (nodes.empty())
        return true;
    // Stack machine over the postorder array.
    uint64_t stack[64];
    size_t sp = 0;
    for (const Node &n : nodes) {
        switch (n.op) {
          case Op::True:
            stack[sp++] = 1;
            break;
          case Op::Port:
            stack[sp++] = vals[n.a] & 1;
            break;
          case Op::Not:
            stack[sp - 1] = !stack[sp - 1];
            break;
          case Op::And:
            --sp;
            stack[sp - 1] = stack[sp - 1] && stack[sp];
            break;
          case Op::Or:
            --sp;
            stack[sp - 1] = stack[sp - 1] || stack[sp];
            break;
          default: {
            uint64_t a = n.aImm ? n.immA : vals[n.a];
            uint64_t b = n.bImm ? n.immB : vals[n.b];
            bool v = false;
            switch (n.op) {
              case Op::Eq:
                v = a == b;
                break;
              case Op::Neq:
                v = a != b;
                break;
              case Op::Lt:
                v = a < b;
                break;
              case Op::Gt:
                v = a > b;
                break;
              case Op::Leq:
                v = a <= b;
                break;
              case Op::Geq:
                v = a >= b;
                break;
              default:
                panic("bad SExpr op " +
                      std::to_string(static_cast<int>(n.op)));
            }
            stack[sp++] = v ? 1 : 0;
            break;
          }
        }
        if (sp >= 64)
            panic("guard expression too deep");
    }
    return stack[0] != 0;
}

SimProgram::SimProgram(const Context &ctx, const std::string &top)
    : ctx(&ctx)
{
    rootInst = std::make_unique<Instance>();
    rootInst->path = "";
    buildInstance(*rootInst, ctx.component(top));
}

uint32_t
SimProgram::addPort(const std::string &path)
{
    auto [it, inserted] =
        portIds.emplace(path, static_cast<uint32_t>(portNames.size()));
    if (inserted)
        portNames.push_back(path);
    return it->second;
}

uint32_t
SimProgram::portId(const std::string &path) const
{
    auto it = portIds.find(path);
    if (it == portIds.end())
        fatal("simulator: unknown port path ", path);
    return it->second;
}

PrimModel *
SimProgram::findModel(const std::string &cell_path) const
{
    auto it = modelIndex.find(cell_path);
    if (it == modelIndex.end())
        fatal("simulator: unknown cell path ", cell_path);
    return it->second;
}

void
SimProgram::buildInstance(Instance &inst, const Component &comp)
{
    inst.comp = &comp;

    // This-instance signature ports. For the top instance these are fresh
    // ("go", "done"); for sub-instances they alias the parent's cell ports
    // ("pe00.go"), which addPort de-duplicates by path.
    for (const auto &p : comp.signature()) {
        std::string path = inst.path.empty()
                               ? p.name
                               : inst.path.substr(0, inst.path.size() - 1) +
                                     "." + p.name;
        uint32_t id = addPort(path);
        if (p.name == "go")
            inst.goPort = id;
        if (p.name == "done")
            inst.donePort = id;
    }

    // Cell ports, models, and sub-instances.
    std::string prefix = inst.path;
    for (const auto &cell : comp.cells()) {
        for (const auto &p : cell->portDefs())
            addPort(prefix + cell->name() + "." + p.name);
        if (cell->isPrimitive()) {
            auto resolver = [&](const std::string &port) {
                return portId(prefix + cell->name() + "." + port);
            };
            auto model = makeModel(*cell, resolver);
            modelIndex[prefix + cell->name()] = model.get();
            modelList.push_back(std::move(model));
        } else {
            auto sub = std::make_unique<Instance>();
            sub->path = prefix + cell->name() + "/";
            // Sub-instance signature ports must resolve to the parent's
            // cell ports: "pe00.go" etc. The path computation in the
            // signature loop above produces exactly those names.
            buildInstance(*sub, ctx->component(cell->type()));
            inst.subs.push_back(std::move(sub));
        }
    }

    // Group holes.
    for (const auto &g : comp.groups()) {
        uint32_t go = addPort(prefix + g->name() + "[go]");
        uint32_t done = addPort(prefix + g->name() + "[done]");
        inst.holes[g->name()] = {go, done};
    }

    // Assignments.
    for (const auto &a : comp.continuousAssignments())
        inst.continuous.push_back(compileAssign(inst, a));
    for (const auto &g : comp.groups()) {
        // Mirror the hardware calling convention in the interpreter: a
        // group's body deactivates during its done cycle (CompileControl
        // deasserts go when done is high), otherwise registers with a
        // still-high write enable would commit twice. Combinational
        // groups (done = constant 1) have no state and stay unchanged.
        bool comb_done = false;
        for (const auto &a : g->assignments()) {
            if (a.dst == g->doneHole() && a.guard->isTrue() &&
                a.src.isConst() && a.src.value == 1) {
                comb_done = true;
            }
        }
        GuardPtr not_done =
            Guard::negate(Guard::fromPort(g->doneHole()));
        auto &vec = inst.groups[g->name()];
        for (const auto &a : g->assignments()) {
            bool own_done = a.dst == g->doneHole();
            if (comb_done || own_done) {
                vec.push_back(compileAssign(inst, a));
            } else {
                Assignment gated(a.dst, a.src,
                                 Guard::conj(a.guard, not_done));
                vec.push_back(compileAssign(inst, gated));
            }
        }
    }
}

uint32_t
SimProgram::resolve(const Instance &inst, const PortRef &ref)
{
    switch (ref.kind) {
      case PortRef::Kind::This: {
        std::string path =
            inst.path.empty()
                ? ref.port
                : inst.path.substr(0, inst.path.size() - 1) + "." + ref.port;
        return portId(path);
      }
      case PortRef::Kind::Cell:
        return portId(inst.path + ref.parent + "." + ref.port);
      case PortRef::Kind::Hole:
        return portId(inst.path + ref.parent + "[" + ref.port + "]");
      case PortRef::Kind::Const:
        panic("resolve() on a constant");
    }
    panic("bad PortRef kind");
}

SAssign
SimProgram::compileAssign(const Instance &inst, const Assignment &a)
{
    SAssign out;
    out.dst = resolve(inst, a.dst);
    out.guard = compileGuard(inst, a.guard);
    if (a.src.isConst()) {
        out.srcConst = true;
        out.srcValue = a.src.value;
    } else {
        out.srcPort = resolve(inst, a.src);
    }
    out.id = static_cast<uint32_t>(assignDescs.size());
    assignDescs.push_back(inst.path + a.str());
    return out;
}

namespace {

void
compileGuardInto(const GuardPtr &g,
                 const std::function<uint32_t(const PortRef &)> &resolve,
                 std::vector<SExpr::Node> &nodes)
{
    SExpr::Node n;
    switch (g->kind()) {
      case Guard::Kind::True:
        n.op = SExpr::Op::True;
        nodes.push_back(n);
        return;
      case Guard::Kind::Port:
        n.op = SExpr::Op::Port;
        n.a = resolve(g->port());
        nodes.push_back(n);
        return;
      case Guard::Kind::Not:
        compileGuardInto(g->left(), resolve, nodes);
        n.op = SExpr::Op::Not;
        nodes.push_back(n);
        return;
      case Guard::Kind::And:
      case Guard::Kind::Or:
        compileGuardInto(g->left(), resolve, nodes);
        compileGuardInto(g->right(), resolve, nodes);
        n.op = g->kind() == Guard::Kind::And ? SExpr::Op::And
                                             : SExpr::Op::Or;
        nodes.push_back(n);
        return;
      case Guard::Kind::Cmp: {
        switch (g->cmpOp()) {
          case Guard::CmpOp::Eq:
            n.op = SExpr::Op::Eq;
            break;
          case Guard::CmpOp::Neq:
            n.op = SExpr::Op::Neq;
            break;
          case Guard::CmpOp::Lt:
            n.op = SExpr::Op::Lt;
            break;
          case Guard::CmpOp::Gt:
            n.op = SExpr::Op::Gt;
            break;
          case Guard::CmpOp::Leq:
            n.op = SExpr::Op::Leq;
            break;
          case Guard::CmpOp::Geq:
            n.op = SExpr::Op::Geq;
            break;
        }
        if (g->lhs().isConst()) {
            n.aImm = true;
            n.immA = g->lhs().value;
        } else {
            n.a = resolve(g->lhs());
        }
        if (g->rhs().isConst()) {
            n.bImm = true;
            n.immB = g->rhs().value;
        } else {
            n.b = resolve(g->rhs());
        }
        nodes.push_back(n);
        return;
      }
    }
    panic("bad guard kind");
}

} // namespace

SExpr
SimProgram::compileGuard(const Instance &inst, const GuardPtr &g)
{
    SExpr e;
    if (g->isTrue())
        return e;
    compileGuardInto(
        g, [&](const PortRef &r) { return resolve(inst, r); }, e.nodes);
    return e;
}

SimState::SimState(const SimProgram &prog) : prog(&prog)
{
    vals.assign(prog.numPorts(), 0);
    tmp.assign(prog.numPorts(), 0);
    driver.assign(prog.numPorts(), -1);
}

void
SimState::reset()
{
    std::fill(vals.begin(), vals.end(), 0);
    for (const auto &m : prog->models())
        m->reset();
    active.clear();
    forces.clear();
}

void
SimState::beginCycle()
{
    active.clear();
    forces.clear();
}

void
SimState::activate(const std::vector<SAssign> &assigns)
{
    for (const auto &a : assigns)
        active.push_back(&a);
}

void
SimState::force(uint32_t port, uint64_t value)
{
    forces.emplace_back(port, value);
}

int
SimState::comb()
{
    for (int pass = 1; pass <= maxCombPasses; ++pass) {
        // Jacobi pass: compute tmp entirely from vals.
        std::fill(tmp.begin(), tmp.end(), 0);
        for (const auto &m : prog->models())
            m->evalComb(vals.data(), tmp.data());
        for (const auto &[port, value] : forces)
            tmp[port] = value;
        for (const SAssign *a : active) {
            if (a->guard.eval(vals.data()))
                tmp[a->dst] = a->srcConst ? a->srcValue : vals[a->srcPort];
        }
        if (tmp == vals) {
            // Converged: verify the unique-driver requirement (§3.2).
            std::fill(driver.begin(), driver.end(), -1);
            for (const SAssign *a : active) {
                if (!a->guard.eval(vals.data()))
                    continue;
                if (driver[a->dst] >= 0) {
                    fatal("multiple active drivers for port ",
                          prog->portName(a->dst), ":\n  ",
                          prog->assignDesc(driver[a->dst]), "\n  ",
                          prog->assignDesc(a->id));
                }
                driver[a->dst] = static_cast<int32_t>(a->id);
            }
            return pass;
        }
        std::swap(tmp, vals);
    }
    fatal("combinational evaluation did not converge after ",
          maxCombPasses, " passes (combinational loop?)");
}

void
SimState::clock()
{
    for (const auto &m : prog->models())
        m->clock(vals.data());
}

} // namespace calyx::sim
