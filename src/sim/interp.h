#ifndef CALYX_SIM_INTERP_H
#define CALYX_SIM_INTERP_H

#include <cstdint>
#include <memory>

#include "sim/env.h"

namespace calyx::sim {

/**
 * Reference interpreter: executes a Calyx program directly from its
 * control program and groups, without compiling control to FSMs
 * (pre-GoInsertion IR). It is the semantic oracle used to validate the
 * compilation pipeline: the architectural state (registers, memories)
 * after interpretation must match the state after simulating the
 * compiled design.
 *
 * Timing model: ideal zero-overhead scheduling. A group occupies every
 * cycle from its activation until (and including) the cycle its done
 * hole reads 1; seq/par/if/while add no overhead cycles of their own.
 * Sub-component instances begin executing their control the cycle after
 * their go input is observed high and pulse done for one cycle after
 * their control completes.
 */
class Interp
{
  public:
    explicit Interp(const SimProgram &prog,
                    Engine engine = Engine::Levelized);
    ~Interp();

    /**
     * Run the top component's control program to completion.
     * @return the number of cycles executed.
     */
    uint64_t run(uint64_t max_cycles = 50'000'000);

    SimState &state() { return stateVal; }
    const SimState &state() const { return stateVal; }

  private:
    struct ExecNode;
    struct InstanceExec;

    void collect(ExecNode &node);
    bool advance(ExecNode &node);
    uint32_t condPortId(const PortRef &ref,
                        const SimProgram::Instance &inst);
    std::unique_ptr<ExecNode> begin(const Control &ctrl,
                                    const SimProgram::Instance &inst);
    void gatherInstances(const SimProgram::Instance &inst);
    void activateContinuousRec(const SimProgram::Instance &inst);

    const SimProgram *prog;
    SimState stateVal;
    std::vector<std::unique_ptr<InstanceExec>> instances;
};

} // namespace calyx::sim

#endif // CALYX_SIM_INTERP_H
