#include "sim/compiled.h"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include <dlfcn.h>
#include <sys/stat.h>
#include <unistd.h>

#include "emit/cppsim.h"
#include "sim/env.h"
#include "sim/partition.h"
#include "support/error.h"
#include "support/hash.h"
#include "support/pool.h"
#include "support/subprocess.h"

namespace calyx::sim {

namespace {

/** Host C++ compiler: $CXX, else the first common name on PATH. */
std::string
hostCompiler()
{
    if (const char *cxx = std::getenv("CXX"); cxx && *cxx) {
        std::string found = findProgram(cxx);
        if (!found.empty())
            return found;
    }
    for (const char *name : {"c++", "g++", "clang++"}) {
        std::string found = findProgram(name);
        if (!found.empty())
            return found;
    }
    return "";
}

/**
 * Flags for the host compile. $CALYX_CPPSIM_CXXFLAGS overrides wholesale;
 * the default scales the optimization level down as the generated source
 * grows — on big netlists the optimizer dominates JIT latency while the
 * straight-line code barely benefits, so trading a few x of eval speed
 * for minutes of compile time is the right default (the same knob
 * verilator exposes as -O0/-O3).
 */
std::vector<std::string>
compileFlags(size_t source_bytes, uint32_t lanes)
{
    std::string flags;
    if (const char *env = std::getenv("CALYX_CPPSIM_CXXFLAGS"); env && *env) {
        flags = env;
    } else if (lanes > 1) {
        // Lane modules live or die by the vectorizer: their statements
        // are per-lane loops over SoA planes, so they get the full
        // -O3 treatment plus the host's native vector ISA (the .so is
        // JIT-compiled for this machine, never shipped). The size
        // scaling below matters much less here because lane loops keep
        // per-function complexity near the scalar module's.
        const char *opt = source_bytes < 8u << 20 ? "-O3" : "-O1";
        flags = std::string(opt) + " -march=native -shared -fPIC"
                " -std=c++17";
        // GCC's if-converter refuses select chains longer than the
        // default phi-args cap, leaving FSM next-state loops scalar
        // ("control flow in loop"); raise it so they become blends.
        flags += " --param max-tree-if-conversion-phi-args=64";
    } else {
        const char *opt = source_bytes < 2u << 20   ? "-O2"
                          : source_bytes < 8u << 20 ? "-O1"
                                                    : "-O0";
        flags = std::string(opt) + " -shared -fPIC -std=c++17";
    }
    std::vector<std::string> out;
    std::istringstream is(flags);
    std::string tok;
    while (is >> tok)
        out.push_back(tok);
    return out;
}

bool
makeDirs(const std::string &path)
{
    // mkdir -p: create each prefix, tolerating already-exists.
    for (size_t i = 1; i <= path.size(); ++i) {
        if (i != path.size() && path[i] != '/')
            continue;
        std::string prefix = path.substr(0, i);
        if (mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST)
            return false;
    }
    return true;
}

bool
fileExists(const std::string &path)
{
    struct stat st;
    return stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

bool
writeFile(const std::string &path, const std::string &data)
{
    FILE *f = fopen(path.c_str(), "wb");
    if (!f)
        return false;
    size_t n = fwrite(data.data(), 1, data.size(), f);
    bool ok = n == data.size() && fclose(f) == 0;
    if (!ok)
        unlink(path.c_str());
    return ok;
}

/**
 * Process-wide registry of loaded modules by source digest. weak_ptr
 * so a module unloads (dlclose) once every SimState using it is gone,
 * while concurrent users share one handle.
 */
std::mutex &
registryMutex()
{
    static std::mutex m;
    return m;
}

std::map<std::string, std::weak_ptr<CompiledModule>> &
registry()
{
    static std::map<std::string, std::weak_ptr<CompiledModule>> r;
    return r;
}

/**
 * Build shard translation units from the generated source: the common
 * prologue (everything before the first marker line, declarations only)
 * plus a contiguous, byte-balanced run of marker-delimited segments per
 * shard. At most `groups` shards come back — one per hardware thread is
 * the useful maximum, because every extra shard re-parses the prologue
 * (which grows with design size: the instance struct declares per-
 * primitive state) for no extra parallelism. A source without markers,
 * or groups <= 1, comes back as one entry.
 */
std::vector<std::string>
splitShards(const std::string &source, size_t groups)
{
    const std::string marker = std::string(emit::cppsimShardMarker) + "\n";
    std::vector<size_t> cuts;
    for (size_t pos = source.find(marker); pos != std::string::npos;
         pos = source.find(marker, pos + marker.size())) {
        // Only match whole lines: start-of-file or right after '\n'.
        if (pos == 0 || source[pos - 1] == '\n')
            cuts.push_back(pos);
    }
    if (cuts.empty() || groups <= 1)
        return {source};
    groups = std::min(groups, cuts.size());
    std::string prologue = source.substr(0, cuts[0]);

    // Greedy contiguous packing toward an even byte split.
    size_t total = source.size() - cuts[0];
    size_t target = (total + groups - 1) / groups;
    std::vector<std::string> shards;
    std::string body;
    for (size_t i = 0; i < cuts.size(); ++i) {
        size_t begin = cuts[i];
        size_t end = i + 1 < cuts.size() ? cuts[i + 1] : source.size();
        body += source.substr(begin, end - begin);
        bool last = i + 1 == cuts.size();
        if (last || (body.size() >= target &&
                     shards.size() + 1 < groups)) {
            shards.push_back(prologue + body);
            body.clear();
        }
    }
    return shards;
}

/** Sources below this size build faster as one translation unit than
 * as parallel shards (compiler startup dominates). */
constexpr size_t shardSourceBytes = 256 * 1024;

/** Compile `source` into the shared object `tmp`. Sources build as a
 * single translation unit unless the host has multiple hardware
 * threads and the source is big and marker-split, in which case one
 * byte-balanced object per thread is compiled in parallel, then
 * linked. fatal() on any failure. */
void
compileSource(const std::string &cxx, const std::string &source,
              const std::string &cc, const std::string &tmp, uint32_t lanes)
{
    std::vector<std::string> flags = compileFlags(source.size(), lanes);
    size_t hw = std::thread::hardware_concurrency();
    std::vector<std::string> shards =
        source.size() < shardSourceBytes
            ? std::vector<std::string>{source}
            : splitShards(source, hw ? hw : 1);

    if (shards.size() <= 1) {
        std::vector<std::string> argv{cxx};
        for (const std::string &f : flags)
            argv.push_back(f);
        argv.insert(argv.end(), {"-o", tmp, cc});
        ProcessResult res = runProcess(argv);
        if (!res.ok()) {
            unlink(tmp.c_str());
            fatal("compiled engine: host compile failed (exit ",
                  res.exitCode, "):\n  ", cxx, " ... -o ", tmp, " ", cc,
                  "\n", res.output);
        }
        return;
    }

    // Per-object flags: everything but the link-only -shared, plus -c.
    std::vector<std::string> objFlags;
    for (const std::string &f : flags) {
        if (f != "-shared")
            objFlags.push_back(f);
    }
    objFlags.push_back("-c");

    std::string stem = tmp + ".shard";
    std::vector<std::string> objs(shards.size());
    auto cleanup = [&] {
        for (size_t i = 0; i < shards.size(); ++i) {
            unlink((stem + std::to_string(i) + ".cc").c_str());
            unlink((stem + std::to_string(i) + ".o").c_str());
        }
    };

    // Shard compiles go through the process-wide WorkPool rather than a
    // private thread vector, so a serve host running simulations and
    // compiles at once keeps its combined thread count at the pool
    // width instead of spiking to 2x (see support/pool.h).
    unsigned workers = static_cast<unsigned>(
        std::min(shards.size(), hw ? hw : size_t{2}));
    std::mutex failMutex;
    std::string failure;
    auto work = [&](size_t i) {
        {
            std::lock_guard<std::mutex> lock(failMutex);
            if (!failure.empty())
                return;
        }
        std::string src = stem + std::to_string(i) + ".cc";
        std::string obj = stem + std::to_string(i) + ".o";
        objs[i] = obj;
        if (!writeFile(src, shards[i])) {
            std::lock_guard<std::mutex> lock(failMutex);
            if (failure.empty())
                failure = "cannot write " + src;
            return;
        }
        std::vector<std::string> argv{cxx};
        for (const std::string &f : objFlags)
            argv.push_back(f);
        argv.insert(argv.end(), {"-o", obj, src});
        ProcessResult res = runProcess(argv);
        if (!res.ok()) {
            std::lock_guard<std::mutex> lock(failMutex);
            if (failure.empty()) {
                failure = "shard compile failed (exit " +
                          std::to_string(res.exitCode) + "): " + src +
                          "\n" + res.output;
            }
        }
    };
    WorkPool::global().parallelFor(shards.size(), workers, work);
    if (!failure.empty()) {
        cleanup();
        fatal("compiled engine: ", failure);
    }

    std::vector<std::string> argv{cxx};
    for (const std::string &f : flags)
        argv.push_back(f);
    argv.insert(argv.end(), {"-o", tmp});
    argv.insert(argv.end(), objs.begin(), objs.end());
    ProcessResult res = runProcess(argv);
    cleanup();
    if (!res.ok()) {
        unlink(tmp.c_str());
        fatal("compiled engine: shard link failed (exit ", res.exitCode,
              "):\n  ", cxx, " ... -o ", tmp, "\n", res.output);
    }
}

template <typename Fn>
Fn
resolveSym(void *handle, const char *name, const std::string &so)
{
    void *sym = dlsym(handle, name);
    if (!sym) {
        fatal("compiled engine: symbol ", name, " missing from ", so,
              " (stale or foreign cache object; remove it and rerun)");
    }
    return reinterpret_cast<Fn>(sym);
}

} // namespace

std::string
compiledCacheDir()
{
    if (const char *dir = std::getenv("CALYX_CPPSIM_CACHE"); dir && *dir)
        return dir;
    if (const char *xdg = std::getenv("XDG_CACHE_HOME"); xdg && *xdg)
        return std::string(xdg) + "/calyx-cppsim";
    if (const char *home = std::getenv("HOME"); home && *home)
        return std::string(home) + "/.cache/calyx-cppsim";
    return "/tmp/calyx-cppsim";
}

std::string
compiledEngineUnavailableReason()
{
    if (hostCompiler().empty()) {
        return "no host C++ compiler found (set $CXX or install one of "
               "c++/g++/clang++)";
    }
    return "";
}

std::shared_ptr<CompiledModule>
CompiledModule::load(const SimProgram &prog, bool probe, uint32_t lanes,
                     uint32_t partitions)
{
    std::ostringstream src;
    emit::CppSimOptions opts;
    opts.probe = probe;
    opts.lanes = lanes;
    opts.partitions = partitions;
    emit::emitCppSim(prog, src, opts);
    std::string source = src.str();
    std::string digest = contentDigest(source);

    std::lock_guard<std::mutex> lock(registryMutex());
    if (auto existing = registry()[digest].lock())
        return existing;

    std::string dir = compiledCacheDir();
    if (!makeDirs(dir)) {
        fatal("compiled engine: cannot create cache directory ", dir, ": ",
              std::strerror(errno));
    }
    std::string so = dir + "/" + digest + ".so";

    auto mod = std::shared_ptr<CompiledModule>(new CompiledModule);
    mod->soPath = so;
    mod->cached = fileExists(so);

    if (!mod->cached) {
        std::string cxx = hostCompiler();
        if (cxx.empty())
            fatal("compiled engine: ", compiledEngineUnavailableReason());

        std::string cc = dir + "/" + digest + ".cc";
        if (!writeFile(cc, source))
            fatal("compiled engine: cannot write ", cc);

        // Compile into a pid-unique temporary, then atomically rename:
        // concurrent builds of the same program race benignly.
        std::string tmp = so + ".tmp." + std::to_string(getpid());
        compileSource(cxx, source, cc, tmp, lanes);
        if (rename(tmp.c_str(), so.c_str()) != 0) {
            unlink(tmp.c_str());
            fatal("compiled engine: cannot move ", tmp, " to ", so, ": ",
                  std::strerror(errno));
        }
    }

    mod->handle = dlopen(so.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (!mod->handle)
        fatal("compiled engine: dlopen ", so, ": ", dlerror());

    auto abi = resolveSym<uint32_t (*)()>(mod->handle, "cppsim_abi", so);
    if (abi() != emit::cppsimAbiVersion) {
        fatal("compiled engine: ", so, " has ABI version ", abi(),
              ", expected ", emit::cppsimAbiVersion,
              " (stale cache object; remove it and rerun)");
    }

    mod->ports = resolveSym<uint32_t (*)()>(mod->handle,
                                            "cppsim_num_ports", so)();
    mod->regs = resolveSym<uint32_t (*)()>(mod->handle, "cppsim_num_regs",
                                           so)();
    mod->mems = resolveSym<uint32_t (*)()>(mod->handle, "cppsim_num_mems",
                                           so)();
    // Optional symbol: scalar modules predate lane support and omit it.
    auto num_lanes = reinterpret_cast<uint32_t (*)()>(
        dlsym(mod->handle, "cppsim_num_lanes"));
    mod->lanes = num_lanes ? num_lanes() : 1;
    if (mod->lanes != lanes) {
        fatal("compiled engine: ", so, " was built for ", mod->lanes,
              " lanes but ", lanes,
              " were requested (hash collision or stale cache; remove it "
              "and rerun)");
    }
    mod->fnMemSize = resolveSym<uint64_t (*)(uint32_t)>(
        mod->handle, "cppsim_mem_size", so);
    mod->drivenMask = resolveSym<const unsigned char *(*)()>(
        mod->handle, "cppsim_driven", so)();
    mod->fnNew = resolveSym<void *(*)()>(mod->handle, "cppsim_new", so);
    mod->fnFree = resolveSym<void (*)(void *)>(mod->handle, "cppsim_free",
                                               so);
    mod->fnBind = resolveSym<void (*)(void *, uint64_t **, uint64_t **)>(
        mod->handle, "cppsim_bind", so);
    mod->fnReset = resolveSym<void (*)(void *, uint64_t *)>(
        mod->handle, "cppsim_reset", so);
    mod->fnEval = resolveSym<void (*)(void *, uint64_t *)>(
        mod->handle, "cppsim_eval", so);
    mod->fnClock = resolveSym<void (*)(void *, uint64_t *)>(
        mod->handle, "cppsim_clock", so);
    mod->fnError = resolveSym<const char *(*)(void *)>(
        mod->handle, "cppsim_error", so);
    // Optional: only partitioned modules export the partition ABI. The
    // task count is the partitioner's output for this design, so it is
    // never compared against the requested target — only the ABI's
    // presence is checked.
    auto num_parts = reinterpret_cast<uint32_t (*)()>(
        dlsym(mod->handle, "cppsim_num_partitions"));
    mod->parts = num_parts ? num_parts() : 1;
    if (partitions > 1) {
        if (!num_parts) {
            fatal("compiled engine: ", so,
                  " lacks the partition ABI despite a partitioned build "
                  "(stale cache object; remove it and rerun)");
        }
        mod->fnEvalPart = resolveSym<void (*)(void *, uint64_t *, uint32_t)>(
            mod->handle, "cppsim_eval_partition", so);
        mod->partDepOff = resolveSym<const uint32_t *(*)()>(
            mod->handle, "cppsim_part_dep_offsets", so)();
        mod->partDeps = resolveSym<const uint32_t *(*)()>(
            mod->handle, "cppsim_part_deps", so)();
        mod->partCosts = resolveSym<const uint64_t *(*)()>(
            mod->handle, "cppsim_part_costs", so)();
    }
    // Optional: only probed modules export it, so plain dlsym rather
    // than the fatal()ing resolveSym.
    mod->fnSetProbe = reinterpret_cast<void (*)(
        void *, void (*)(void *, const uint64_t *), void *)>(
        dlsym(mod->handle, "cppsim_set_probe"));
    if (probe && !mod->fnSetProbe) {
        fatal("compiled engine: ", so,
              " lacks cppsim_set_probe despite a probed build (stale "
              "cache object; remove it and rerun)");
    }

    if (mod->ports != prog.numPorts()) {
        fatal("compiled engine: ", so, " was built for ", mod->ports,
              " ports but the program has ", prog.numPorts(),
              " (hash collision or stale cache; remove it and rerun)");
    }

    registry()[digest] = mod;
    return mod;
}

CompiledModule::~CompiledModule()
{
    if (handle)
        dlclose(handle);
}

void *
CompiledModule::newInstance() const
{
    void *inst = fnNew();
    if (!inst)
        fatal("compiled engine: instance allocation failed");
    return inst;
}

void
CompiledModule::freeInstance(void *inst) const
{
    if (inst)
        fnFree(inst);
}

void
CompiledModule::bind(void *inst, uint64_t **reg_storage,
                     uint64_t **mem_storage) const
{
    fnBind(inst, reg_storage, mem_storage);
}

void
CompiledModule::reset(void *inst, uint64_t *vals) const
{
    fnReset(inst, vals);
}

void
CompiledModule::eval(void *inst, uint64_t *vals) const
{
    fnEval(inst, vals);
}

void
CompiledModule::clock(void *inst, uint64_t *vals) const
{
    fnClock(inst, vals);
}

const char *
CompiledModule::error(void *inst) const
{
    return fnError(inst);
}

void
CompiledModule::evalPartition(void *inst, uint64_t *vals, uint32_t i) const
{
    if (!fnEvalPart)
        fatal("compiled engine: evalPartition on an unpartitioned module");
    fnEvalPart(inst, vals, i);
}

PartitionPlan
CompiledModule::partitionPlan(unsigned threads) const
{
    if (!partDepOff || !partDeps || !partCosts)
        fatal("compiled engine: partitionPlan on an unpartitioned module");
    PartitionPlan plan;
    plan.tasks.resize(parts);
    for (uint32_t t = 0; t < parts; ++t) {
        PartitionPlan::Task &task = plan.tasks[t];
        task.deps.assign(partDeps + partDepOff[t],
                         partDeps + partDepOff[t + 1]);
        task.cost = partCosts[t] ? partCosts[t] : 1;
    }
    assignThreads(plan, threads);
    return plan;
}

void
CompiledModule::setProbe(void *inst, void (*fn)(void *, const uint64_t *),
                         void *ctx) const
{
    if (!fnSetProbe)
        fatal("compiled engine: setProbe on a probe-free module");
    fnSetProbe(inst, fn, ctx);
}

} // namespace calyx::sim
