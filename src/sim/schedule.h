#ifndef CALYX_SIM_SCHEDULE_H
#define CALYX_SIM_SCHEDULE_H

#include <cstdint>
#include <vector>

#include "sim/models.h"

namespace calyx::sim {

class SimProgram;

/**
 * Static evaluation schedule for the levelized engine: the port-level
 * dependency graph over *all potential drivers* of a SimProgram,
 * condensed into strongly connected components and topologically
 * ordered.
 *
 * Edges (pred -> succ means succ's settled value reads pred):
 *  - assignment dst <- src port (when not a constant),
 *  - assignment dst <- every port its guard reads,
 *  - model output  <- every input the model declares as a combinational
 *    dependency (PrimModel::deps()); registers/memories declare none
 *    for their clocked inputs, which cuts the graph at state elements.
 *
 * Group assignments that are never simultaneously active still
 * contribute edges: the schedule is conservative, valid for any active
 * set the interpreter selects at runtime.
 *
 * Construction rejects *unconditional* combinational cycles — cycles
 * whose every edge is an unguarded continuous assignment or a model
 * combinational edge, i.e. cycles no runtime activation choice can
 * break — with a diagnostic naming the ports on the cycle. Conditional
 * cycles (through guards or group assignments) survive as non-trivial
 * SCC nodes and get a bounded local fixed point at evaluation time.
 */
class SimSchedule
{
  public:
    explicit SimSchedule(const SimProgram &prog);

    struct Node
    {
        uint32_t first = 0; ///< Range into memberPorts().
        uint32_t count = 0;
        bool cyclic = false; ///< Non-trivial SCC or self-loop.
    };

    /** Schedule nodes in evaluation (topological) order. */
    const std::vector<Node> &nodes() const { return nodeList; }

    /** Flattened SCC membership, indexed via Node::first/count. */
    const std::vector<uint32_t> &memberPorts() const { return members; }

    /** Schedule node evaluating `port`. */
    uint32_t nodeOf(uint32_t port) const { return portNode[port]; }

    /** Ports whose settled value reads `port` (dedup'd successors). */
    const uint32_t *fanoutBegin(uint32_t port) const
    {
        return fanoutData.data() + fanoutOffset[port];
    }
    const uint32_t *fanoutEnd(uint32_t port) const
    {
        return fanoutData.data() + fanoutOffset[port + 1];
    }

    /** The model driving `port`, or nullptr. */
    PrimModel *modelOf(uint32_t port) const { return portModel[port]; }

    /** Models whose outputs can change at clock edges. */
    const std::vector<PrimModel *> &statefulModels() const
    {
        return stateful;
    }

    /** Output ports of the i-th stateful model. */
    const std::vector<uint32_t> &statefulOutputs(size_t i) const
    {
        return statefulOuts[i];
    }

  private:
    std::vector<Node> nodeList;
    std::vector<uint32_t> members;
    std::vector<uint32_t> portNode;
    std::vector<uint32_t> fanoutOffset, fanoutData; // CSR successor lists
    std::vector<PrimModel *> portModel;
    std::vector<PrimModel *> stateful;
    std::vector<std::vector<uint32_t>> statefulOuts;
};

} // namespace calyx::sim

#endif // CALYX_SIM_SCHEDULE_H
