#ifndef CALYX_SIM_PARTITION_H
#define CALYX_SIM_PARTITION_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace calyx::sim {

class SimProgram;
class SimSchedule;

/**
 * MTask-style macro-task partition of the levelized evaluation
 * schedule (the verilator technique): the Tarjan-condensed schedule
 * nodes are clustered into coarse cost-modeled tasks over the level
 * DAG, then list-scheduled onto a fixed number of threads with
 * critical-path priority. One plan drives both engines — the levelized
 * interpreter walks Task::nodes directly, and the compiled backend
 * emits one generated function per task (emit/cppsim.h) whose
 * dependency tables the host re-reads into this same structure.
 *
 * Invariants the execution model relies on:
 *  - tasks are topologically ordered: every Task::deps entry is a
 *    smaller task id;
 *  - a schedule node appears in exactly one task, and the nodes inside
 *    a task are in ascending (schedule/topological) order;
 *  - an SCC node never splits across tasks, so its Gauss-Seidel fixed
 *    point runs single-threaded exactly like the scalar engine;
 *  - each threadTasks[w] list is ascending in task id, so executing a
 *    thread's list in order — spin-waiting on cross-thread deps — can
 *    never deadlock: every dependency edge and every intra-thread
 *    ordering edge increases the task id.
 */
struct PartitionPlan
{
    struct Task
    {
        std::vector<uint32_t> nodes; ///< Schedule node ids, ascending.
        std::vector<uint32_t> deps;  ///< Earlier task ids, ascending.
        uint64_t cost = 1;           ///< Estimated evaluation cost.
        uint32_t thread = 0;         ///< Owning thread in the plan.
    };

    std::vector<Task> tasks;          ///< Topologically ordered.
    std::vector<uint32_t> taskOfNode; ///< Schedule node id -> task id.
    /// Static per-thread execution order (ascending task ids).
    std::vector<std::vector<uint32_t>> threadTasks;
    unsigned threads = 1;

    /** True when the plan actually fans out. */
    bool parallel() const { return threads > 1 && tasks.size() > 1; }
};

/**
 * Partition grain target: roughly how many equal-cost slices the total
 * schedule cost is cut into per level run. $CALYX_SIM_PARTITIONS
 * (clamped to [1, 256]) overrides the default of 16. Deliberately a
 * pure function of the environment — never of --threads or the host's
 * core count — so the compiled engine's partitioned module (whose
 * source embeds the plan) has one digest per design and thread counts
 * 2 and 4 share one cached .so.
 */
uint32_t partitionTarget();

/**
 * Build the macro-task plan for `sched`: per-node costs from the
 * static driver/guard/model shape of `prog`, longest-path levels over
 * the node DAG, cost-capped clustering inside each level (ordered by
 * predecessor-task affinity to keep cross-partition port edges low),
 * and a chain-merge of consecutive single-task levels so serialized
 * designs degrade to few (down to one) tasks instead of a task per
 * level. Finishes with assignThreads(plan, threads).
 */
PartitionPlan buildPartitionPlan(const SimProgram &prog,
                                 const SimSchedule &sched,
                                 uint32_t target, unsigned threads);

/**
 * Critical-path-aware list scheduling of plan.tasks onto `threads`
 * workers: tasks are simulated in priority order (longest path of cost
 * to a sink first), each placed on the worker that can start it
 * earliest. Fills Task::thread, plan.threadTasks (ascending ids), and
 * plan.threads (clamped to the task count). Also used standalone on
 * plans rebuilt from a compiled module's dependency tables.
 */
void assignThreads(PartitionPlan &plan, unsigned threads);

/**
 * Cycle executor for a PartitionPlan: runs `fn(task, worker)` for every
 * task, honoring dependencies with per-task atomic completion stamps —
 * no global barrier per level. Each worker executes its static
 * threadTasks list in order on a dedicated WorkPool participant
 * (WorkPool::runConcurrent), spin-waiting (with yield) until each
 * cross-thread dependency's stamp reaches the current run. Memory
 * model: a task's writes are release-published by its stamp store and
 * acquire-consumed by every dependent's spin load, so a task may read
 * any value written by its transitive dependencies and must write only
 * state no concurrent task reads (see docs/simulation.md).
 *
 * Falls back to sequential in-order execution (still correct: task
 * order is topological) when the plan is not parallel or when called
 * from inside a WorkPool worker (nested parallelism is capped, not
 * stacked). An exception thrown by `fn` aborts the run: waiters bail
 * out, every worker drains its list without running further tasks, and
 * the first exception is rethrown on the caller.
 */
class PartitionRunner
{
  public:
    explicit PartitionRunner(const PartitionPlan &plan);

    void run(const std::function<void(uint32_t task, unsigned worker)> &fn);

  private:
    const PartitionPlan *plan;
    std::unique_ptr<std::atomic<uint64_t>[]> doneStamp;
    uint64_t runStamp = 0;
};

} // namespace calyx::sim

#endif // CALYX_SIM_PARTITION_H
