#ifndef CALYX_PASSES_PIPELINE_SPEC_H
#define CALYX_PASSES_PIPELINE_SPEC_H

#include <string>
#include <utility>
#include <vector>

#include "passes/pass_manager.h"

namespace calyx::passes {

/** One pass in a parsed pipeline, with its per-pass options. */
struct PassInvocation
{
    std::string name;
    std::vector<std::pair<std::string, std::string>> options;

    /** Round-trip back to item syntax: `name[k=v,...]`. */
    std::string str() const;
};

/** An ordered, fully alias-expanded pipeline. */
struct PipelineSpec
{
    std::vector<PassInvocation> passes;

    /** Round-trip back to spec syntax (for diagnostics and tests). */
    std::string str() const;
};

/**
 * Parse a pipeline-spec string into an ordered pass list:
 *
 *   spec  := item (',' item)*
 *   item  := '-' name              disable: remove every prior
 *                                  occurrence of the pass (or of every
 *                                  member of the alias)
 *          | name                  append a pass, or expand an alias
 *          | name '[' k=v,... ']'  append a pass with options
 *
 * Aliases (`all`, `default`, `pre-opt`, `compile`, `post-opt`) expand
 * recursively and cannot take options. Unknown names are fatal errors
 * with a did-you-mean suggestion. Commas inside `[...]` do not split
 * items, so `all,-collapse-control,resource-sharing[min-width=8]` parses
 * as three items.
 */
PipelineSpec parsePipelineSpec(const std::string &spec);

/**
 * Apply `pass[k=v,...]` option overrides to every instance of the pass
 * already in the spec (the driver's `-x`). The pass must be present;
 * overriding an absent pass is a fatal error, so typos cannot silently
 * do nothing.
 */
void applyPassOptions(PipelineSpec &spec, const std::string &item);

/**
 * Instantiate the spec through the PassRegistry, applying each
 * invocation's options via Pass::option.
 */
PassManager buildPassManager(const PipelineSpec &spec);

/** Parse + instantiate + run. Returns per-pass instrumentation. */
std::vector<PassRunInfo> runPipeline(Context &ctx, const PipelineSpec &spec,
                                     const RunOptions &opts = {});
std::vector<PassRunInfo> runPipeline(Context &ctx, const std::string &spec,
                                     const RunOptions &opts = {});

} // namespace calyx::passes

#endif // CALYX_PASSES_PIPELINE_SPEC_H
