#ifndef CALYX_PASSES_WELLFORMED_H
#define CALYX_PASSES_WELLFORMED_H

#include "passes/pass_manager.h"

namespace calyx::passes {

/**
 * Structural validation of the IL (paper §3's static requirements):
 *  - assignments connect existing ports with matching widths and legal
 *    directions (cell inputs / component outputs / holes are writable),
 *  - guard leaves are 1-bit; comparison operands have equal widths,
 *  - no two unconditional assignments drive the same port in one scope,
 *  - control only references defined groups, and every enabled group
 *    writes its own done hole,
 *  - if/while condition ports are 1-bit.
 *
 * Runs between every pair of passes when PassManager verification is on.
 */
class WellFormed final : public Pass
{
  public:
    std::string name() const override { return "well-formed"; }
    void runOnComponent(Component &comp, Context &ctx) override;
};

} // namespace calyx::passes

#endif // CALYX_PASSES_WELLFORMED_H
