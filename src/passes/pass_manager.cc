#include "passes/pass_manager.h"

#include <chrono>
#include <iostream>

#include "ir/printer.h"
#include "passes/wellformed.h"
#include "support/error.h"

namespace calyx::passes {

void
Pass::option(const std::string &key, const std::string &value)
{
    fatal("pass '", name(), "' has no option '", key, "' (got '", key, "=",
          value, "')");
}

void
Pass::runOnComponent(Component &, Context &)
{}

void
Pass::runOnContext(Context &ctx)
{
    for (Component *comp : ctx.topologicalOrder())
        runOnComponent(*comp, ctx);
}

PassManager &
PassManager::add(std::unique_ptr<Pass> pass)
{
    passes.push_back(std::move(pass));
    return *this;
}

std::vector<PassRunInfo>
PassManager::run(Context &ctx, const RunOptions &opts) const
{
    using clock = std::chrono::steady_clock;
    std::vector<PassRunInfo> infos;
    infos.reserve(passes.size());
    WellFormed checker;

    for (const auto &pass : passes) {
        PassRunInfo info;
        info.pass = pass->name();
        if (opts.collectStats)
            info.before = gatherStats(ctx);

        auto start = clock::now();
        pass->runOnContext(ctx);
        info.seconds =
            std::chrono::duration<double>(clock::now() - start).count();

        if (opts.collectStats)
            info.after = gatherStats(ctx);

        if (opts.verify) {
            // Check component-by-component so failures can name both
            // the pass that produced the bad IR and the component it
            // broke.
            for (Component *comp : ctx.topologicalOrder()) {
                try {
                    checker.runOnComponent(*comp, ctx);
                } catch (const Error &e) {
                    fatal("verification failed after pass '", pass->name(),
                          "' in component '", comp->name(), "': ",
                          e.what());
                }
            }
        }

        if (!opts.dumpIrAfter.empty() && opts.dumpIrAfter == info.pass) {
            std::ostream &os = opts.dumpTo ? *opts.dumpTo : std::cerr;
            os << "// IR after pass '" << info.pass << "'\n";
            Printer::print(ctx, os);
        }

        infos.push_back(std::move(info));
    }
    return infos;
}

void
PassManager::run(Context &ctx, bool verify) const
{
    RunOptions opts;
    opts.verify = verify;
    run(ctx, opts);
}

} // namespace calyx::passes
