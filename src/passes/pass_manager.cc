#include "passes/pass_manager.h"

#include "passes/wellformed.h"
#include "support/error.h"

namespace calyx::passes {

void
Pass::runOnComponent(Component &, Context &)
{}

void
Pass::runOnContext(Context &ctx)
{
    for (Component *comp : ctx.topologicalOrder())
        runOnComponent(*comp, ctx);
}

PassManager &
PassManager::add(std::unique_ptr<Pass> pass)
{
    passes.push_back(std::move(pass));
    return *this;
}

void
PassManager::run(Context &ctx, bool verify) const
{
    WellFormed checker;
    for (const auto &pass : passes) {
        pass->runOnContext(ctx);
        if (verify) {
            try {
                checker.runOnContext(ctx);
            } catch (const Error &e) {
                fatal("verification failed after pass '", pass->name(),
                      "': ", e.what());
            }
        }
    }
}

} // namespace calyx::passes
