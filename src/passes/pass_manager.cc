#include "passes/pass_manager.h"

#include <algorithm>
#include <chrono>
#include <iostream>
#include <unordered_map>

#include "ir/printer.h"
#include "passes/wellformed.h"
#include "support/error.h"
#include "support/pool.h"

namespace calyx::passes {

namespace {

/**
 * Components grouped into dependency wavefronts: level 0 instantiates
 * no components, level N only instantiates components of levels < N.
 * Components within one level share no instantiation edge in either
 * direction (the relation is a DAG and levels are its longest-path
 * strata), so a per-component pass may process a whole level
 * concurrently; the level boundary is the barrier that makes callee
 * results (inferred latencies, lowered signatures) visible to callers,
 * exactly as the serial topological traversal does.
 */
std::vector<std::vector<Component *>>
dependencyLevels(Context &ctx)
{
    std::vector<std::vector<Component *>> levels;
    std::unordered_map<Symbol, size_t> level;
    for (Component *comp : ctx.topologicalOrder()) {
        size_t lv = 0;
        for (const auto &cell : comp->cells()) {
            if (cell->isPrimitive())
                continue;
            auto it = level.find(cell->type());
            if (it != level.end())
                lv = std::max(lv, it->second + 1);
        }
        level[comp->name()] = lv;
        if (lv >= levels.size())
            levels.resize(lv + 1);
        levels[lv].push_back(comp);
    }
    return levels;
}

} // namespace

void
Pass::option(const std::string &key, const std::string &value)
{
    fatal("pass '", name(), "' has no option '", key, "' (got '", key, "=",
          value, "')");
}

void
Pass::runOnComponent(Component &, Context &)
{}

void
Pass::runOnContext(Context &ctx)
{
    for (Component *comp : ctx.topologicalOrder())
        runOnComponent(*comp, ctx);
}

PassManager &
PassManager::add(std::unique_ptr<Pass> pass)
{
    passes.push_back(std::move(pass));
    return *this;
}

std::vector<PassRunInfo>
PassManager::run(Context &ctx, const RunOptions &opts) const
{
    using clock = std::chrono::steady_clock;
    std::vector<PassRunInfo> infos;
    infos.reserve(passes.size());
    WellFormed checker;

    // Wavefront partition for parallel per-component dispatch. Computed
    // once: passes never add or remove components, and a pass that
    // deletes an instantiation cell only loosens the constraints, so a
    // stale (over-constrained) partition stays correct.
    const unsigned threads = std::max(1u, opts.threads);
    std::vector<std::vector<Component *>> levels;
    if (threads > 1)
        levels = dependencyLevels(ctx);

    for (const auto &pass : passes) {
        PassRunInfo info;
        info.pass = pass->name();
        if (opts.collectStats)
            info.before = gatherStats(ctx);

        auto start = clock::now();
        if (threads > 1 && pass->componentParallel()) {
            // Each wavefront fans out over the shared pool; the level
            // boundary is a barrier, so dependency-directed reads (a
            // caller consulting its callee's inferred latency) see
            // completed callees just as the serial traversal does.
            for (const auto &lv : levels) {
                WorkPool::global().parallelFor(
                    lv.size(), threads, [&](size_t i) {
                        pass->runOnComponent(*lv[i], ctx);
                    });
            }
        } else {
            pass->runOnContext(ctx);
        }
        info.seconds =
            std::chrono::duration<double>(clock::now() - start).count();

        if (opts.collectStats)
            info.after = gatherStats(ctx);

        if (opts.verify) {
            // Check component-by-component so failures can name both
            // the pass that produced the bad IR and the component it
            // broke.
            for (Component *comp : ctx.topologicalOrder()) {
                try {
                    checker.runOnComponent(*comp, ctx);
                } catch (const Error &e) {
                    fatal("verification failed after pass '", pass->name(),
                          "' in component '", comp->name(), "': ",
                          e.what());
                }
            }
        }

        if (!opts.dumpIrAfter.empty() && opts.dumpIrAfter == info.pass) {
            std::ostream &os = opts.dumpTo ? *opts.dumpTo : std::cerr;
            os << "// IR after pass '" << info.pass << "'\n";
            Printer::print(ctx, os);
        }

        infos.push_back(std::move(info));
    }
    return infos;
}

void
PassManager::run(Context &ctx, bool verify) const
{
    RunOptions opts;
    opts.verify = verify;
    run(ctx, opts);
}

} // namespace calyx::passes
