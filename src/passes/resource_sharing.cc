#include "passes/resource_sharing.h"

#include "passes/registry.h"

#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "analysis/coloring.h"
#include "analysis/schedule.h"
#include "support/error.h"

namespace calyx::passes {

namespace {

/** Rename cell references in an assignment according to `mapping`. */
void
rewriteAssignment(Assignment &a,
                  const std::unordered_map<Symbol, Symbol> &mapping)
{
    auto rename = [&mapping](const PortRef &p) {
        if (p.isCell()) {
            auto it = mapping.find(p.parent);
            if (it != mapping.end()) {
                PortRef np = p;
                np.parent = it->second;
                return np;
            }
        }
        return p;
    };
    a.dst = rename(a.dst);
    a.src = rename(a.src);
    a.guard = Guard::rewritePorts(a.guard, rename);
}

void
rewriteControlPorts(Control &ctrl,
                    const std::unordered_map<Symbol, Symbol> &mapping)
{
    ctrl.walk([&mapping](Control &node) {
        PortRef *port = nullptr;
        if (node.kind() == Control::Kind::If)
            port = const_cast<PortRef *>(&cast<If>(node).condPort());
        else if (node.kind() == Control::Kind::While)
            port = const_cast<PortRef *>(&cast<While>(node).condPort());
        if (port && port->isCell()) {
            auto it = mapping.find(port->parent);
            if (it != mapping.end())
                port->parent = it->second;
        }
    });
}

} // namespace

void
ResourceSharing::runOnComponent(Component &comp, Context &ctx)
{
    mergedCount = 0;

    // Shareable cells, bucketed by signature.
    std::unordered_set<Symbol> shareable;
    std::map<Symbol, std::vector<Symbol>> buckets;
    for (const auto &cell : comp.cells()) {
        bool share = cell->attrs().has(Attributes::shareAttr) &&
                     !cell->attrs().has(Attributes::statefulAttr);
        if (!cell->isPrimitive())
            share = false;
        if (ctx.primitives().has(cell->type()) &&
            ctx.primitives().get(cell->type()).stateful()) {
            share = false;
        }
        // Cost-model heuristic (§9): skip units whose width is below
        // the profitability threshold.
        if (share && minWidth > 0 && !cell->params().empty() &&
            cell->params()[0] < minWidth) {
            share = false;
        }
        if (!share)
            continue;
        shareable.insert(cell->name());
        std::string sig = cell->type().str();
        for (uint64_t p : cell->params())
            sig += "_" + std::to_string(p);
        buckets[Symbol(sig)].push_back(cell->name());
    }
    if (shareable.empty())
        return;

    // Which groups use which shareable cells.
    std::unordered_map<Symbol, std::set<Symbol>> cells_of_group;
    std::set<Symbol> in_continuous;
    const Component &ccomp = comp; // reads must not invalidate DefUse
    for (const auto &group : ccomp.groups()) {
        auto &used = cells_of_group[group->name()];
        for (const auto &a : std::as_const(*group).assignments()) {
            auto mark = [&](const PortRef &p) {
                if (p.isCell() && shareable.count(p.parent))
                    used.insert(p.parent);
            };
            mark(a.dst);
            a.reads(mark);
        }
    }
    for (const auto &a : ccomp.continuousAssignments()) {
        auto mark = [&](const PortRef &p) {
            if (p.isCell() && shareable.count(p.parent))
                in_continuous.insert(p.parent);
        };
        mark(a.dst);
        a.reads(mark);
    }
    // Cells referenced by if/while condition ports behave like continuous
    // uses of the enclosing cond group; attribute them to that group.
    ccomp.control().walk([&](const Control &node) {
        const PortRef *port = nullptr;
        Symbol cond;
        if (node.kind() == Control::Kind::If) {
            port = &cast<If>(node).condPort();
            cond = cast<If>(node).condGroup();
        } else if (node.kind() == Control::Kind::While) {
            port = &cast<While>(node).condPort();
            cond = cast<While>(node).condGroup();
        }
        if (!port || !port->isCell() || !shareable.count(port->parent))
            return;
        if (cond.empty())
            in_continuous.insert(port->parent);
        else
            cells_of_group[cond].insert(port->parent);
    });

    // Step 1: group conflict graph from the execution schedule, as
    // hashed id-pair keys (O(1) insert/lookup).
    std::unordered_set<uint64_t> group_conflicts =
        analysis::parallelConflictKeys(ccomp.control());

    // Cell-level conflicts, same representation.
    std::unordered_set<uint64_t> cell_conflicts;
    auto add_conflict = [&cell_conflicts](Symbol a, Symbol b) {
        if (a != b)
            cell_conflicts.insert(analysis::symbolPairKey(a, b));
    };
    // Two cells used by one group are simultaneously busy.
    for (const auto &[g, used] : cells_of_group) {
        (void)g;
        for (Symbol a : used)
            for (Symbol b : used)
                add_conflict(a, b);
    }
    // Cells of groups that may run in parallel conflict. Iterate the
    // recorded pairs and cross the groups' cell sets.
    for (uint64_t key : group_conflicts) {
        Symbol g1 = Symbol::fromId(static_cast<uint32_t>(key >> 32));
        Symbol g2 = Symbol::fromId(static_cast<uint32_t>(key));
        auto it1 = cells_of_group.find(g1);
        auto it2 = cells_of_group.find(g2);
        if (it1 == cells_of_group.end() || it2 == cells_of_group.end())
            continue;
        for (Symbol a : it1->second)
            for (Symbol b : it2->second)
                add_conflict(a, b);
    }
    // Continuous uses are always live: conflict with everything.
    for (Symbol c : in_continuous)
        for (Symbol other : shareable)
            add_conflict(c, other);

    // Step 2: greedy coloring per signature bucket.
    auto conflict = [&cell_conflicts](Symbol a, Symbol b) {
        return cell_conflicts.count(analysis::symbolPairKey(a, b)) > 0;
    };
    std::unordered_map<Symbol, Symbol> mapping;
    for (const auto &[sig, cells] : buckets) {
        (void)sig;
        auto colored = analysis::greedyColor(cells, conflict);
        for (const auto &[from, to] : colored) {
            if (from != to) {
                mapping.emplace(from, to);
                ++mergedCount;
            }
        }
    }
    if (mapping.empty())
        return;

    // Step 3: rewrite groups, continuous assignments, and control.
    for (const auto &group : comp.groups())
        for (auto &a : group->assignments())
            rewriteAssignment(a, mapping);
    for (auto &a : comp.continuousAssignments())
        rewriteAssignment(a, mapping);
    rewriteControlPorts(comp.control(), mapping);
}

void
ResourceSharing::option(const std::string &key, const std::string &value)
{
    if (key == "min-width") {
        if (value.empty() ||
            value.find_first_not_of("0123456789") != std::string::npos)
            fatal("resource-sharing option min-width: expected a "
                  "non-negative integer, got '", value, "'");
        try {
            minWidth = static_cast<Width>(std::stoull(value));
        } catch (const std::out_of_range &) {
            fatal("resource-sharing option min-width: value '", value,
                  "' is out of range");
        }
        return;
    }
    Pass::option(key, value);
}

namespace {
PassRegistration<ResourceSharing> registration{
    "resource-sharing",
    "Share combinational functional units across non-parallel groups (§5.1)",
    {{"pre-opt", 30}}};
} // namespace

} // namespace calyx::passes
