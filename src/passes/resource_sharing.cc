#include "passes/resource_sharing.h"

#include "passes/registry.h"

#include <map>
#include <set>

#include "analysis/coloring.h"
#include "analysis/schedule.h"
#include "support/error.h"

namespace calyx::passes {

namespace {

/** Rename cell references in an assignment according to `mapping`. */
void
rewriteAssignment(Assignment &a,
                  const std::map<std::string, std::string> &mapping)
{
    auto rename = [&mapping](const PortRef &p) {
        if (p.isCell()) {
            auto it = mapping.find(p.parent);
            if (it != mapping.end()) {
                PortRef np = p;
                np.parent = it->second;
                return np;
            }
        }
        return p;
    };
    a.dst = rename(a.dst);
    a.src = rename(a.src);
    a.guard = Guard::rewritePorts(a.guard, rename);
}

void
rewriteControlPorts(Control &ctrl,
                    const std::map<std::string, std::string> &mapping)
{
    ctrl.walk([&mapping](Control &node) {
        PortRef *port = nullptr;
        if (node.kind() == Control::Kind::If)
            port = const_cast<PortRef *>(&cast<If>(node).condPort());
        else if (node.kind() == Control::Kind::While)
            port = const_cast<PortRef *>(&cast<While>(node).condPort());
        if (port && port->isCell()) {
            auto it = mapping.find(port->parent);
            if (it != mapping.end())
                port->parent = it->second;
        }
    });
}

} // namespace

void
ResourceSharing::runOnComponent(Component &comp, Context &ctx)
{
    mergedCount = 0;

    // Shareable cells, bucketed by signature.
    std::set<std::string> shareable;
    std::map<std::string, std::vector<std::string>> buckets;
    for (const auto &cell : comp.cells()) {
        bool share = cell->attrs().has(Attributes::shareAttr) &&
                     !cell->attrs().has(Attributes::statefulAttr);
        if (!cell->isPrimitive())
            share = false;
        if (ctx.primitives().has(cell->type()) &&
            ctx.primitives().get(cell->type()).stateful()) {
            share = false;
        }
        // Cost-model heuristic (§9): skip units whose width is below
        // the profitability threshold.
        if (share && minWidth > 0 && !cell->params().empty() &&
            cell->params()[0] < minWidth) {
            share = false;
        }
        if (!share)
            continue;
        shareable.insert(cell->name());
        std::string sig = cell->type();
        for (uint64_t p : cell->params())
            sig += "_" + std::to_string(p);
        buckets[sig].push_back(cell->name());
    }
    if (shareable.empty())
        return;

    // Which groups use which shareable cells.
    std::map<std::string, std::set<std::string>> cells_of_group;
    std::set<std::string> in_continuous;
    for (const auto &group : comp.groups()) {
        auto &used = cells_of_group[group->name()];
        for (const auto &a : group->assignments()) {
            auto mark = [&](const PortRef &p) {
                if (p.isCell() && shareable.count(p.parent))
                    used.insert(p.parent);
            };
            mark(a.dst);
            a.reads(mark);
        }
    }
    for (const auto &a : comp.continuousAssignments()) {
        auto mark = [&](const PortRef &p) {
            if (p.isCell() && shareable.count(p.parent))
                in_continuous.insert(p.parent);
        };
        mark(a.dst);
        a.reads(mark);
    }
    // Cells referenced by if/while condition ports behave like continuous
    // uses of the enclosing cond group; attribute them to that group.
    comp.control().walk([&](const Control &node) {
        const PortRef *port = nullptr;
        std::string cond;
        if (node.kind() == Control::Kind::If) {
            port = &cast<If>(node).condPort();
            cond = cast<If>(node).condGroup();
        } else if (node.kind() == Control::Kind::While) {
            port = &cast<While>(node).condPort();
            cond = cast<While>(node).condGroup();
        }
        if (!port || !port->isCell() || !shareable.count(port->parent))
            return;
        if (cond.empty())
            in_continuous.insert(port->parent);
        else
            cells_of_group[cond].insert(port->parent);
    });

    // Step 1: group conflict graph from the execution schedule.
    std::set<analysis::GroupPair> group_conflicts =
        analysis::parallelConflicts(comp.control());

    // Cell-level conflicts.
    std::set<std::pair<std::string, std::string>> cell_conflicts;
    auto add_conflict = [&cell_conflicts](const std::string &a,
                                          const std::string &b) {
        if (a != b)
            cell_conflicts.insert(a < b ? std::pair{a, b}
                                        : std::pair{b, a});
    };
    // Two cells used by one group are simultaneously busy.
    for (const auto &[g, used] : cells_of_group) {
        (void)g;
        for (const auto &a : used)
            for (const auto &b : used)
                add_conflict(a, b);
    }
    // Cells of groups that may run in parallel conflict.
    for (const auto &[g1, g2] : group_conflicts) {
        auto it1 = cells_of_group.find(g1);
        auto it2 = cells_of_group.find(g2);
        if (it1 == cells_of_group.end() || it2 == cells_of_group.end())
            continue;
        for (const auto &a : it1->second)
            for (const auto &b : it2->second)
                add_conflict(a, b);
    }
    // Continuous uses are always live: conflict with everything.
    for (const auto &c : in_continuous)
        for (const auto &other : shareable)
            add_conflict(c, other);

    // Step 2: greedy coloring per signature bucket.
    std::map<std::string, std::string> mapping;
    for (const auto &[sig, cells] : buckets) {
        (void)sig;
        auto colored = analysis::greedyColor(cells, cell_conflicts);
        for (const auto &[from, to] : colored) {
            if (from != to) {
                mapping[from] = to;
                ++mergedCount;
            }
        }
    }
    if (mapping.empty())
        return;

    // Step 3: rewrite groups, continuous assignments, and control.
    for (const auto &group : comp.groups())
        for (auto &a : group->assignments())
            rewriteAssignment(a, mapping);
    for (auto &a : comp.continuousAssignments())
        rewriteAssignment(a, mapping);
    rewriteControlPorts(comp.control(), mapping);
}

void
ResourceSharing::option(const std::string &key, const std::string &value)
{
    if (key == "min-width") {
        if (value.empty() ||
            value.find_first_not_of("0123456789") != std::string::npos)
            fatal("resource-sharing option min-width: expected a "
                  "non-negative integer, got '", value, "'");
        try {
            minWidth = static_cast<Width>(std::stoull(value));
        } catch (const std::out_of_range &) {
            fatal("resource-sharing option min-width: value '", value,
                  "' is out of range");
        }
        return;
    }
    Pass::option(key, value);
}

namespace {
PassRegistration<ResourceSharing> registration{
    "resource-sharing",
    "Share combinational functional units across non-parallel groups (§5.1)",
    {{"pre-opt", 30}}};
} // namespace

} // namespace calyx::passes
