#ifndef CALYX_PASSES_REMOVE_GROUPS_H
#define CALYX_PASSES_REMOVE_GROUPS_H

#include "passes/pass_manager.h"

namespace calyx::passes {

/**
 * RemoveGroups (paper §4.2): eliminate all interface signals and groups.
 *
 *  1. Wire the component's go/done ports to the single remaining group
 *     enable (`top[go] = this.go`, `this.done = top[done]`).
 *  2. Compute the value of every hole as the disjunction of its guarded
 *     writes and inline it transitively into every read (guards and
 *     assignment sources).
 *  3. Drop hole writes, hoist all group assignments into the top-level
 *     wires section, and delete the groups.
 *
 * Precondition: control is a single enable (run CompileControl first).
 * Postcondition: no groups, no holes, empty control — directly
 * translatable to RTL.
 */
class RemoveGroups final : public Pass
{
  public:
    std::string name() const override { return "remove-groups"; }
    void runOnComponent(Component &comp, Context &ctx) override;
};

} // namespace calyx::passes

#endif // CALYX_PASSES_REMOVE_GROUPS_H
