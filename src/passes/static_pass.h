#ifndef CALYX_PASSES_STATIC_PASS_H
#define CALYX_PASSES_STATIC_PASS_H

#include <optional>

#include "passes/pass_manager.h"

namespace calyx::passes {

/**
 * Sensitive (paper §4.4): opportunistic latency-sensitive compilation.
 *
 * Computes the latency of every control subtree from the "static"
 * attributes of enabled groups (seq: sum, par: max, if: cond + max of
 * branches; while and enables of unannotated groups are dynamic). Each
 * maximal static subtree is compiled into a single group driven by one
 * self-incrementing counter: every leaf group's go is asserted for
 * exactly its latency window and done signals are ignored. Conditions
 * inside static regions latch their port into a fresh 1-bit register at
 * the end of the condition window and gate both branch schedules.
 *
 * The generated group carries "static"=L. Dynamic parents interact with
 * it through the ordinary go/done interface (done fires when the counter
 * reaches L); the counter reset is emitted as a continuous assignment so
 * the group also re-arms when a *static* parent stops enabling it after
 * exactly L cycles. The pass is best-effort and falls back to
 * CompileControl wherever latency information is missing, which is what
 * lets Calyx mix latency-sensitive and -insensitive code freely.
 *
 * Must run before GoInsertion (generated assignments are gated there).
 */
class StaticPass final : public Pass
{
  public:
    std::string name() const override { return "static"; }
    void runOnComponent(Component &comp, Context &ctx) override;

    /**
     * Latency of a control subtree if it is fully static.
     * Exposed for InferLatency and tests.
     */
    static std::optional<int64_t> latencyOf(const Control &ctrl,
                                            const Component &comp);
};

} // namespace calyx::passes

#endif // CALYX_PASSES_STATIC_PASS_H
