#include "passes/pipeline.h"

#include "passes/collapse_control.h"
#include "passes/compile_control.h"
#include "passes/dead_cell_removal.h"
#include "passes/go_insertion.h"
#include "passes/infer_latency.h"
#include "passes/register_sharing.h"
#include "passes/remove_groups.h"
#include "passes/resource_sharing.h"
#include "passes/static_pass.h"
#include "passes/wellformed.h"

namespace calyx::passes {

DesignStats
gatherStats(const Component &comp)
{
    DesignStats s;
    s.cells = static_cast<int>(comp.cells().size());
    s.groups = static_cast<int>(comp.groups().size());
    s.controlStatements = countControlStatements(comp.control());
    return s;
}

DesignStats
gatherStats(const Context &ctx)
{
    DesignStats total;
    for (const auto &comp : ctx.components()) {
        DesignStats s = gatherStats(*comp);
        total.cells += s.cells;
        total.groups += s.groups;
        total.controlStatements += s.controlStatements;
    }
    return total;
}

void
compile(Context &ctx, const CompileOptions &options)
{
    PassManager pm;
    pm.add<WellFormed>();
    if (options.collapseControl)
        pm.add<CollapseControl>();
    if (options.inferLatency)
        pm.add<InferLatency>();
    if (options.resourceSharing)
        pm.add<ResourceSharing>(options.resourceSharingMinWidth);
    if (options.registerSharing)
        pm.add<RegisterSharing>();
    if (options.sensitive)
        pm.add<StaticPass>();
    pm.add<GoInsertion>();
    pm.add<CompileControl>();
    pm.add<RemoveGroups>();
    if (options.deadCellRemoval)
        pm.add<DeadCellRemoval>();
    pm.run(ctx, options.verify);
}

} // namespace calyx::passes
