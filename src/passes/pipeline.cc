#include "passes/pipeline.h"

#include <string>

namespace calyx::passes {

std::string
compileOptionsToSpec(const CompileOptions &options)
{
    std::string spec = "well-formed";
    if (options.collapseControl)
        spec += ",collapse-control";
    if (options.inferLatency)
        spec += ",infer-latency";
    if (options.resourceSharing) {
        spec += ",resource-sharing";
        if (options.resourceSharingMinWidth > 0)
            spec += "[min-width=" +
                    std::to_string(options.resourceSharingMinWidth) + "]";
    }
    if (options.registerSharing)
        spec += ",register-sharing";
    if (options.sensitive)
        spec += ",static";
    spec += ",go-insertion,compile-control,remove-groups";
    if (options.deadCellRemoval)
        spec += ",dead-cell-removal";
    return spec;
}

void
compile(Context &ctx, const CompileOptions &options)
{
    RunOptions run_options;
    run_options.verify = options.verify;
    runPipeline(ctx, compileOptionsToSpec(options), run_options);
}

} // namespace calyx::passes
