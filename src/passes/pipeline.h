#ifndef CALYX_PASSES_PIPELINE_H
#define CALYX_PASSES_PIPELINE_H

#include "passes/design_stats.h"
#include "passes/pipeline_spec.h"

namespace calyx::passes {

/**
 * Boolean-style configuration of the standard compilation pipeline.
 *
 * Compatibility shim: the pass API is the named-pass registry
 * (passes/registry.h) driven by pipeline-spec strings such as
 * `"all,-collapse-control,resource-sharing[min-width=8]"`; this struct
 * is kept so existing callers migrate incrementally. compile() lowers
 * it to the equivalent spec (see compileOptionsToSpec) and runs that.
 */
struct CompileOptions
{
    bool collapseControl = true;
    /** §5.3 latency inference (enables Sensitive without annotations). */
    bool inferLatency = true;
    /** §5.1 resource sharing. */
    bool resourceSharing = false;
    /**
     * Cost-model threshold for resource sharing (§9 future work):
     * functional units narrower than this are not shared because the
     * added multiplexers outweigh the saving. 0 = share everything.
     */
    Width resourceSharingMinWidth = 0;
    /** §5.2 live-range based register sharing. */
    bool registerSharing = false;
    /** §4.4 latency-sensitive compilation. */
    bool sensitive = false;
    bool deadCellRemoval = true;
    /** Run WellFormed after every pass. */
    bool verify = false;
};

/**
 * The pipeline-spec string equivalent to a CompileOptions value, e.g.
 * `"well-formed,collapse-control,infer-latency,go-insertion,..."`.
 * compile(ctx, options) is exactly runPipeline(ctx, that spec).
 */
std::string compileOptionsToSpec(const CompileOptions &options);

/**
 * Run the standard pipeline (paper §4.2): optimizations, GoInsertion,
 * CompileControl, RemoveGroups, cleanup. Afterwards every component is a
 * flat list of guarded assignments suitable for the Verilog backend and
 * the cycle simulator.
 */
void compile(Context &ctx, const CompileOptions &options = {});

} // namespace calyx::passes

#endif // CALYX_PASSES_PIPELINE_H
