#ifndef CALYX_PASSES_PIPELINE_H
#define CALYX_PASSES_PIPELINE_H

#include "passes/pass_manager.h"

namespace calyx::passes {

/** Configuration of the standard compilation pipeline. */
struct CompileOptions
{
    bool collapseControl = true;
    /** §5.3 latency inference (enables Sensitive without annotations). */
    bool inferLatency = true;
    /** §5.1 resource sharing. */
    bool resourceSharing = false;
    /**
     * Cost-model threshold for resource sharing (§9 future work):
     * functional units narrower than this are not shared because the
     * added multiplexers outweigh the saving. 0 = share everything.
     */
    Width resourceSharingMinWidth = 0;
    /** §5.2 live-range based register sharing. */
    bool registerSharing = false;
    /** §4.4 latency-sensitive compilation. */
    bool sensitive = false;
    bool deadCellRemoval = true;
    /** Run WellFormed after every pass. */
    bool verify = false;
};

/** Size statistics of a design (paper §7.4). */
struct DesignStats
{
    int cells = 0;
    int groups = 0;
    int controlStatements = 0;
};

/** Gather §7.4-style statistics for one component. */
DesignStats gatherStats(const Component &comp);

/** Sum of per-component statistics over a whole program. */
DesignStats gatherStats(const Context &ctx);

/**
 * Run the standard pipeline (paper §4.2): optimizations, GoInsertion,
 * CompileControl, RemoveGroups, cleanup. Afterwards every component is a
 * flat list of guarded assignments suitable for the Verilog backend and
 * the cycle simulator.
 */
void compile(Context &ctx, const CompileOptions &options = {});

} // namespace calyx::passes

#endif // CALYX_PASSES_PIPELINE_H
