#ifndef CALYX_PASSES_REGISTER_SHARING_H
#define CALYX_PASSES_REGISTER_SHARING_H

#include "passes/pass_manager.h"

namespace calyx::passes {

/**
 * Register sharing via live-range analysis (paper §5.2). Stateful
 * registers cannot be shared with group-local reasoning, so this pass:
 *
 *  1. builds the parallel CFG of the control program (p-nodes for `par`),
 *  2. computes conservative per-group register read / must-write sets,
 *  3. runs a backward liveness dataflow (children of p-nodes analyzed
 *     with the p-node's live-out as their boundary),
 *  4. builds the interference graph from overlapping live ranges,
 *  5. greedily colors same-width registers and rewrites groups.
 *
 * Registers referenced by continuous assignments or condition ports, and
 * registers marked "external", are excluded.
 */
class RegisterSharing final : public Pass
{
  public:
    std::string name() const override { return "register-sharing"; }
    void runOnComponent(Component &comp, Context &ctx) override;

    /** Number of registers merged away in the last run. */
    int merged() const { return mergedCount; }

  private:
    int mergedCount = 0;
};

} // namespace calyx::passes

#endif // CALYX_PASSES_REGISTER_SHARING_H
