#ifndef CALYX_PASSES_DESIGN_STATS_H
#define CALYX_PASSES_DESIGN_STATS_H

#include "ir/context.h"

namespace calyx::passes {

/** Size statistics of a design (paper §7.4). */
struct DesignStats
{
    int cells = 0;
    int groups = 0;
    int controlStatements = 0;

    bool operator==(const DesignStats &other) const = default;
};

/** Gather §7.4-style statistics for one component. */
DesignStats gatherStats(const Component &comp);

/** Sum of per-component statistics over a whole program. */
DesignStats gatherStats(const Context &ctx);

} // namespace calyx::passes

#endif // CALYX_PASSES_DESIGN_STATS_H
