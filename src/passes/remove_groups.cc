#include "passes/remove_groups.h"

#include "passes/registry.h"

#include <map>
#include <set>

#include "support/error.h"

namespace calyx::passes {

namespace {

/** Guard equivalent of a 1-bit assignment source. */
GuardPtr
asGuard(const PortRef &src)
{
    if (src.isConst()) {
        if (src.value == 1)
            return Guard::trueGuard();
        // A constant-0 write contributes nothing to the disjunction, but
        // guard it as false via !true is unnecessary: the caller skips it.
        panic("asGuard on constant 0");
    }
    return Guard::fromPort(src);
}

} // namespace

void
RemoveGroups::runOnComponent(Component &comp, Context &)
{
    if (comp.groups().empty()) {
        comp.setControl(std::make_unique<Empty>());
        return;
    }

    // Step 1: connect the component interface to the top-level enable.
    if (comp.control().kind() == Control::Kind::Enable) {
        const std::string &top = cast<Enable>(comp.control()).group();
        if (!comp.findGroup(top))
            fatal(comp.name(), ": control enables unknown group ", top);
        // Gate with !done like any other child enable: without it a
        // single-group program would keep committing state during its
        // done cycle while the environment still holds go high.
        comp.continuousAssignments().emplace_back(
            holePort(top, "go"), constant(1, 1),
            Guard::conj(Guard::fromPort(thisPort("go")),
                        Guard::negate(
                            Guard::fromPort(holePort(top, "done")))));
        comp.continuousAssignments().emplace_back(
            thisPort("done"), constant(1, 1),
            Guard::fromPort(holePort(top, "done")));
    } else if (comp.control().kind() != Control::Kind::Empty) {
        fatal(comp.name(), ": RemoveGroups needs a single group enable; "
                           "run CompileControl first");
    }

    // Step 2: collect hole writes as (guard, source-as-guard) pairs.
    // The hole's value is the disjunction over its writes (paper §4.2).
    std::map<PortRef, GuardPtr> raw;
    auto record = [&raw](const Assignment &a) {
        if (!a.dst.isHole())
            return;
        if (a.src.isConst() && a.src.value == 0)
            return;
        GuardPtr term = Guard::conj(a.guard, asGuard(a.src));
        auto it = raw.find(a.dst);
        if (it == raw.end())
            raw.emplace(a.dst, term);
        else
            it->second = Guard::disj(it->second, term);
    };
    for (const auto &g : comp.groups())
        for (const auto &a : g->assignments())
            record(a);
    for (const auto &a : comp.continuousAssignments())
        record(a);

    // Expand hole-valued guards to closure (control trees guarantee the
    // hole dependency graph is acyclic).
    std::map<PortRef, GuardPtr> expanded;
    std::set<PortRef> in_progress;
    std::function<GuardPtr(const PortRef &)> value =
        [&](const PortRef &hole) -> GuardPtr {
        auto done = expanded.find(hole);
        if (done != expanded.end())
            return done->second;
        if (in_progress.count(hole))
            fatal(comp.name(), ": cyclic interface-signal dependency at ",
                  hole.str());
        in_progress.insert(hole);
        GuardPtr v;
        auto it = raw.find(hole);
        if (it == raw.end()) {
            // Never written: constant false. Encode as !true.
            v = Guard::negate(Guard::trueGuard());
        } else {
            v = Guard::rewritePorts(it->second, [&](const PortRef &p) {
                return p; // identity; holes handled below via subst
            });
            // Substitute nested holes.
            std::function<GuardPtr(const GuardPtr &)> subst =
                [&](const GuardPtr &g) -> GuardPtr {
                switch (g->kind()) {
                  case Guard::Kind::True:
                    return g;
                  case Guard::Kind::Port:
                    if (g->port().isHole())
                        return value(g->port());
                    return g;
                  case Guard::Kind::Cmp:
                    if (g->lhs().isHole() || g->rhs().isHole())
                        fatal(comp.name(),
                              ": hole used inside a comparison");
                    return g;
                  case Guard::Kind::Not:
                    return Guard::negate(subst(g->left()));
                  case Guard::Kind::And:
                    return Guard::conj(subst(g->left()),
                                       subst(g->right()));
                  case Guard::Kind::Or:
                    return Guard::disj(subst(g->left()),
                                       subst(g->right()));
                }
                panic("bad guard kind");
            };
            v = subst(v);
        }
        in_progress.erase(hole);
        expanded.emplace(hole, v);
        return v;
    };

    // Step 3: rewrite every assignment and hoist group bodies.
    auto rewrite = [&](const Assignment &a,
                       std::vector<Assignment> &out) {
        if (a.dst.isHole())
            return; // hole writes disappear
        GuardPtr guard =
            Guard::rewritePorts(a.guard, [](const PortRef &p) { return p; });
        std::function<GuardPtr(const GuardPtr &)> subst =
            [&](const GuardPtr &g) -> GuardPtr {
            switch (g->kind()) {
              case Guard::Kind::True:
                return g;
              case Guard::Kind::Port:
                if (g->port().isHole())
                    return value(g->port());
                return g;
              case Guard::Kind::Cmp:
                return g;
              case Guard::Kind::Not:
                return Guard::negate(subst(g->left()));
              case Guard::Kind::And:
                return Guard::conj(subst(g->left()), subst(g->right()));
              case Guard::Kind::Or:
                return Guard::disj(subst(g->left()), subst(g->right()));
            }
            panic("bad guard kind");
        };
        guard = subst(guard);
        if (a.src.isHole()) {
            // `dst = G ? hole` becomes `dst = (G & value(hole)) ? 1` with
            // a 0 fallback implied by the unassigned default.
            out.emplace_back(a.dst, constant(1, 1),
                             Guard::conj(guard, value(a.src)));
        } else {
            out.emplace_back(a.dst, a.src, guard);
        }
    };

    std::vector<Assignment> wires;
    for (const auto &a : comp.continuousAssignments())
        rewrite(a, wires);
    for (const auto &g : comp.groups())
        for (const auto &a : g->assignments())
            rewrite(a, wires);
    comp.continuousAssignments() = std::move(wires);

    std::vector<std::string> group_names;
    for (const auto &g : comp.groups())
        group_names.push_back(g->name());
    for (const auto &name : group_names)
        comp.removeGroup(name);
    comp.setControl(std::make_unique<Empty>());
}

namespace {
PassRegistration<RemoveGroups> registration{
    "remove-groups",
    "Inline holes and erase groups, leaving flat guarded assignments (§4.2)",
    {{"compile", 40}}};
} // namespace

} // namespace calyx::passes
