#ifndef CALYX_PASSES_DEAD_CELL_REMOVAL_H
#define CALYX_PASSES_DEAD_CELL_REMOVAL_H

#include "passes/pass_manager.h"

namespace calyx::passes {

/**
 * Removes cells that no assignment or control statement references.
 * Sharing passes leave merged-away functional units behind; this pass
 * reclaims them. Memories and cells marked "external" are preserved
 * because the environment observes them.
 */
class DeadCellRemoval final : public Pass
{
  public:
    std::string name() const override { return "dead-cell-removal"; }
    void runOnComponent(Component &comp, Context &ctx) override;
};

} // namespace calyx::passes

#endif // CALYX_PASSES_DEAD_CELL_REMOVAL_H
