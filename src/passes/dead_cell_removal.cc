#include "passes/dead_cell_removal.h"

#include "passes/registry.h"

#include <set>

namespace calyx::passes {

void
DeadCellRemoval::runOnComponent(Component &comp, Context &ctx)
{
    std::set<std::string> used;
    auto mark = [&used](const PortRef &p) {
        if (p.isCell())
            used.insert(p.parent);
    };
    auto scan = [&](const std::vector<Assignment> &assigns) {
        for (const auto &a : assigns) {
            mark(a.dst);
            a.reads(mark);
        }
    };
    for (const auto &g : comp.groups())
        scan(g->assignments());
    scan(comp.continuousAssignments());
    comp.control().walk([&](const Control &node) {
        if (node.kind() == Control::Kind::If)
            mark(cast<If>(node).condPort());
        else if (node.kind() == Control::Kind::While)
            mark(cast<While>(node).condPort());
    });

    std::vector<std::string> dead;
    for (const auto &cell : comp.cells()) {
        if (used.count(cell->name()))
            continue;
        if (cell->attrs().has(Attributes::externalAttr))
            continue;
        if (cell->isPrimitive() &&
            ctx.primitives().get(cell->type()).isMemory) {
            continue;
        }
        dead.push_back(cell->name());
    }
    for (const auto &name : dead)
        comp.removeCell(name);
}

namespace {
PassRegistration<DeadCellRemoval> registration{
    "dead-cell-removal",
    "Remove cells no assignment or control statement references",
    {{"post-opt", 10}}};
} // namespace

} // namespace calyx::passes
