#include "passes/dead_cell_removal.h"

#include "passes/registry.h"

#include <vector>

#include "ir/defuse.h"

namespace calyx::passes {

void
DeadCellRemoval::runOnComponent(Component &comp, Context &ctx)
{
    // The DefUse index already knows every assignment, guard, and
    // control site naming each cell; a cell is live iff it has any
    // cell-kind use (hole-kind uses belong to the group namespace).
    const DefUse &du = comp.defUse();
    auto used = [&du](Symbol cell) {
        const DefUse::Uses *uses = du.find(cell);
        if (!uses)
            return false;
        if (uses->anyAssign(DefUse::kAnyCell))
            return true;
        for (const auto &use : uses->control) {
            if (!use.asGroup) // if/while condition port
                return true;
        }
        return false;
    };

    std::vector<Symbol> dead;
    for (const auto &cell : comp.cells()) {
        if (used(cell->name()))
            continue;
        if (cell->attrs().has(Attributes::externalAttr))
            continue;
        if (cell->isPrimitive() &&
            ctx.primitives().get(cell->type()).isMemory) {
            continue;
        }
        dead.push_back(cell->name());
    }
    for (Symbol name : dead)
        comp.removeCell(name);
}

namespace {
PassRegistration<DeadCellRemoval> registration{
    "dead-cell-removal",
    "Remove cells no assignment or control statement references",
    {{"post-opt", 10}}};
} // namespace

} // namespace calyx::passes
