#include "passes/pipeline_spec.h"

#include <algorithm>
#include <set>

#include "passes/registry.h"
#include "support/error.h"

namespace calyx::passes {

namespace {

/** Split on commas that are not inside `[...]`. */
std::vector<std::string>
splitItems(const std::string &spec)
{
    std::vector<std::string> items;
    std::string cur;
    int depth = 0;
    for (char c : spec) {
        if (c == '[')
            ++depth;
        else if (c == ']')
            --depth;
        if (c == ',' && depth == 0) {
            items.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    items.push_back(cur);
    if (depth != 0)
        fatal("pipeline spec '", spec, "': unbalanced '[' ... ']'");

    // Trim whitespace and drop empty items (trailing commas).
    std::vector<std::string> out;
    for (auto &item : items) {
        size_t b = item.find_first_not_of(" \t");
        size_t e = item.find_last_not_of(" \t");
        if (b == std::string::npos)
            continue;
        out.push_back(item.substr(b, e - b + 1));
    }
    return out;
}

/** Parse `name[k=v,...]` into an invocation (no registry lookup). */
PassInvocation
parseItem(const std::string &item)
{
    PassInvocation inv;
    size_t open = item.find('[');
    if (open == std::string::npos) {
        inv.name = item;
        return inv;
    }
    if (item.back() != ']')
        fatal("pass options '", item, "': expected trailing ']'");
    inv.name = item.substr(0, open);
    std::string body = item.substr(open + 1, item.size() - open - 2);
    for (const std::string &kv : splitItems(body)) {
        size_t eq = kv.find('=');
        if (eq == std::string::npos || eq == 0)
            fatal("pass option '", kv, "' in '", item,
                  "': expected key=value");
        inv.options.emplace_back(kv.substr(0, eq), kv.substr(eq + 1));
    }
    if (inv.name.empty())
        fatal("pass options '", item, "': missing pass name");
    return inv;
}

/** Every concrete pass an alias (transitively) expands to. */
void
collectAliasMembers(const std::string &alias, std::set<std::string> &out,
                    int depth)
{
    auto &registry = PassRegistry::instance();
    if (depth > 16)
        fatal("alias '", alias, "': expansion is cyclic");
    for (const std::string &item :
         splitItems(registry.aliasExpansion(alias))) {
        if (registry.hasAlias(item))
            collectAliasMembers(item, out, depth + 1);
        else
            out.insert(item);
    }
}

void
expandInto(const std::string &spec, PipelineSpec &out, int depth)
{
    auto &registry = PassRegistry::instance();
    if (depth > 16)
        fatal("pipeline spec '", spec, "': alias expansion is cyclic");

    for (const std::string &item : splitItems(spec)) {
        if (item[0] == '-') {
            std::string name = item.substr(1);
            std::set<std::string> disabled;
            if (registry.hasAlias(name)) {
                collectAliasMembers(name, disabled, depth);
            } else if (registry.hasPass(name)) {
                disabled.insert(name);
            } else {
                std::string hint = registry.suggest(name);
                fatal("cannot disable unknown pass '", name, "'",
                      hint.empty() ? ""
                                   : " (did you mean '" + hint + "'?)");
            }
            auto &passes = out.passes;
            passes.erase(std::remove_if(passes.begin(), passes.end(),
                                        [&](const PassInvocation &inv) {
                                            return disabled.count(inv.name);
                                        }),
                         passes.end());
            continue;
        }

        PassInvocation inv = parseItem(item);
        if (registry.hasAlias(inv.name)) {
            if (!inv.options.empty())
                fatal("alias '", inv.name,
                      "' cannot take options; set them on the member "
                      "pass instead");
            expandInto(registry.aliasExpansion(inv.name), out, depth + 1);
        } else if (registry.hasPass(inv.name)) {
            out.passes.push_back(std::move(inv));
        } else {
            std::string hint = registry.suggest(inv.name);
            fatal("unknown pass or alias '", inv.name, "'",
                  hint.empty() ? "" : " (did you mean '" + hint + "'?)",
                  "; run with --list-passes for the full list");
        }
    }
}

} // namespace

std::string
PassInvocation::str() const
{
    std::string s = name;
    if (!options.empty()) {
        s += "[";
        for (size_t i = 0; i < options.size(); ++i) {
            if (i)
                s += ",";
            s += options[i].first + "=" + options[i].second;
        }
        s += "]";
    }
    return s;
}

std::string
PipelineSpec::str() const
{
    std::string s;
    for (size_t i = 0; i < passes.size(); ++i) {
        if (i)
            s += ",";
        s += passes[i].str();
    }
    return s;
}

PipelineSpec
parsePipelineSpec(const std::string &spec)
{
    PipelineSpec out;
    expandInto(spec, out, 0);
    return out;
}

void
applyPassOptions(PipelineSpec &spec, const std::string &item)
{
    PassInvocation inv = parseItem(item);
    if (!PassRegistry::instance().hasPass(inv.name)) {
        std::string hint = PassRegistry::instance().suggest(inv.name);
        fatal("unknown pass '", inv.name, "'",
              hint.empty() ? "" : " (did you mean '" + hint + "'?)");
    }
    if (inv.options.empty())
        fatal("pass option override '", item, "': expected name[key=value]");
    bool found = false;
    for (PassInvocation &target : spec.passes) {
        if (target.name != inv.name)
            continue;
        found = true;
        for (const auto &kv : inv.options) {
            auto it = std::find_if(
                target.options.begin(), target.options.end(),
                [&](const auto &o) { return o.first == kv.first; });
            if (it != target.options.end())
                it->second = kv.second;
            else
                target.options.push_back(kv);
        }
    }
    if (!found)
        fatal("pass '", inv.name, "' is not in the pipeline '", spec.str(),
              "'; add it with -p first");
}

PassManager
buildPassManager(const PipelineSpec &spec)
{
    PassManager pm;
    for (const PassInvocation &inv : spec.passes) {
        auto pass = PassRegistry::instance().create(inv.name);
        for (const auto &[key, value] : inv.options)
            pass->option(key, value);
        pm.add(std::move(pass));
    }
    return pm;
}

std::vector<PassRunInfo>
runPipeline(Context &ctx, const PipelineSpec &spec, const RunOptions &opts)
{
    return buildPassManager(spec).run(ctx, opts);
}

std::vector<PassRunInfo>
runPipeline(Context &ctx, const std::string &spec, const RunOptions &opts)
{
    return runPipeline(ctx, parsePipelineSpec(spec), opts);
}

} // namespace calyx::passes
