#include "passes/register_sharing.h"

#include "passes/registry.h"

#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/coloring.h"
#include "analysis/liveness.h"
#include "analysis/pcfg.h"
#include "ir/defuse.h"

namespace calyx::passes {

void
RegisterSharing::runOnComponent(Component &comp, Context &)
{
    mergedCount = 0;

    std::set<Symbol> regs = analysis::registerCells(comp);
    if (regs.size() < 2)
        return;
    std::set<Symbol> always_live = analysis::alwaysLiveRegisters(comp);

    auto access = analysis::registerAccess(comp);
    // const access: building the pCFG must not drop the DefUse index
    // registerAccess just populated.
    auto pcfg = analysis::buildPcfg(std::as_const(comp).control());
    analysis::Liveness liveness(*pcfg, access, always_live);

    // Candidates: registers not live everywhere, bucketed by width.
    std::map<uint64_t, std::vector<Symbol>> buckets;
    for (const auto &cell : comp.cells()) {
        if (cell->type() != "std_reg")
            continue;
        if (always_live.count(cell->name()))
            continue;
        buckets[cell->params()[0]].push_back(cell->name());
    }

    auto conflict = [&liveness](Symbol a, Symbol b) {
        return liveness.conflict(a, b);
    };

    std::unordered_map<Symbol, Symbol> mapping;
    for (const auto &[width, cells] : buckets) {
        (void)width;
        if (cells.size() < 2)
            continue;
        auto colored = analysis::greedyColor(cells, conflict);
        for (const auto &[from, to] : colored) {
            if (from != to) {
                mapping.emplace(from, to);
                ++mergedCount;
            }
        }
    }
    if (mapping.empty())
        return;

    auto rename = [&mapping](const PortRef &p) {
        if (p.isCell()) {
            auto it = mapping.find(p.parent);
            if (it != mapping.end()) {
                PortRef np = p;
                np.parent = it->second;
                return np;
            }
        }
        return p;
    };
    for (const auto &group : comp.groups()) {
        for (auto &a : group->assignments()) {
            a.dst = rename(a.dst);
            a.src = rename(a.src);
            a.guard = Guard::rewritePorts(a.guard, rename);
        }
    }
    for (auto &a : comp.continuousAssignments()) {
        a.dst = rename(a.dst);
        a.src = rename(a.src);
        a.guard = Guard::rewritePorts(a.guard, rename);
    }
    comp.control().walk([&mapping](Control &node) {
        PortRef *port = nullptr;
        if (node.kind() == Control::Kind::If)
            port = const_cast<PortRef *>(&cast<If>(node).condPort());
        else if (node.kind() == Control::Kind::While)
            port = const_cast<PortRef *>(&cast<While>(node).condPort());
        if (port && port->isCell()) {
            auto it = mapping.find(port->parent);
            if (it != mapping.end())
                port->parent = it->second;
        }
    });
}

namespace {
PassRegistration<RegisterSharing> registration{
    "register-sharing",
    "Merge registers with disjoint live ranges (§5.2)",
    {{"pre-opt", 40}}};
} // namespace

} // namespace calyx::passes
