#include "passes/register_sharing.h"

#include "passes/registry.h"

#include <map>
#include <set>

#include "analysis/coloring.h"
#include "analysis/liveness.h"
#include "analysis/pcfg.h"
#include "analysis/read_write_sets.h"

namespace calyx::passes {

void
RegisterSharing::runOnComponent(Component &comp, Context &)
{
    mergedCount = 0;

    std::set<std::string> regs = analysis::registerCells(comp);
    if (regs.size() < 2)
        return;
    std::set<std::string> always_live = analysis::alwaysLiveRegisters(comp);

    auto access = analysis::registerAccess(comp);
    auto pcfg = analysis::buildPcfg(comp.control());
    analysis::Liveness liveness(*pcfg, access, always_live);

    // Candidates: registers not live everywhere, bucketed by width.
    std::map<uint64_t, std::vector<std::string>> buckets;
    for (const auto &cell : comp.cells()) {
        if (cell->type() != "std_reg")
            continue;
        if (always_live.count(cell->name()))
            continue;
        buckets[cell->params()[0]].push_back(cell->name());
    }

    std::set<std::pair<std::string, std::string>> conflicts =
        liveness.interference();

    std::map<std::string, std::string> mapping;
    for (const auto &[width, cells] : buckets) {
        (void)width;
        if (cells.size() < 2)
            continue;
        auto colored = analysis::greedyColor(cells, conflicts);
        for (const auto &[from, to] : colored) {
            if (from != to) {
                mapping[from] = to;
                ++mergedCount;
            }
        }
    }
    if (mapping.empty())
        return;

    auto rename = [&mapping](const PortRef &p) {
        if (p.isCell()) {
            auto it = mapping.find(p.parent);
            if (it != mapping.end()) {
                PortRef np = p;
                np.parent = it->second;
                return np;
            }
        }
        return p;
    };
    for (const auto &group : comp.groups()) {
        for (auto &a : group->assignments()) {
            a.dst = rename(a.dst);
            a.src = rename(a.src);
            a.guard = Guard::rewritePorts(a.guard, rename);
        }
    }
    for (auto &a : comp.continuousAssignments()) {
        a.dst = rename(a.dst);
        a.src = rename(a.src);
        a.guard = Guard::rewritePorts(a.guard, rename);
    }
    comp.control().walk([&mapping](Control &node) {
        PortRef *port = nullptr;
        if (node.kind() == Control::Kind::If)
            port = const_cast<PortRef *>(&cast<If>(node).condPort());
        else if (node.kind() == Control::Kind::While)
            port = const_cast<PortRef *>(&cast<While>(node).condPort());
        if (port && port->isCell()) {
            auto it = mapping.find(port->parent);
            if (it != mapping.end())
                port->parent = it->second;
        }
    });
}

namespace {
PassRegistration<RegisterSharing> registration{
    "register-sharing",
    "Merge registers with disjoint live ranges (§5.2)",
    {{"pre-opt", 40}}};
} // namespace

} // namespace calyx::passes
