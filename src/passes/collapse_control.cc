#include "passes/collapse_control.h"

#include "passes/registry.h"

namespace calyx::passes {

ControlPtr
CollapseControl::collapse(ControlPtr ctrl)
{
    switch (ctrl->kind()) {
      case Control::Kind::Empty:
      case Control::Kind::Enable:
        return ctrl;
      case Control::Kind::Seq:
      case Control::Kind::Par: {
        bool is_seq = ctrl->kind() == Control::Kind::Seq;
        auto take = [&](auto &node) { return std::move(node.stmts()); };
        std::vector<ControlPtr> stmts =
            is_seq ? take(cast<Seq>(*ctrl)) : take(cast<Par>(*ctrl));
        std::vector<ControlPtr> out;
        for (auto &s : stmts) {
            ControlPtr c = collapse(std::move(s));
            if (c->kind() == Control::Kind::Empty)
                continue;
            // Flatten same-kind nesting: seq{a, seq{b, c}} = seq{a, b, c};
            // par{par{a, b}, c} = par{a, b, c}.
            if (c->kind() == ctrl->kind()) {
                auto &inner =
                    is_seq ? cast<Seq>(*c).stmts() : cast<Par>(*c).stmts();
                for (auto &ic : inner)
                    out.push_back(std::move(ic));
            } else {
                out.push_back(std::move(c));
            }
        }
        if (out.empty())
            return std::make_unique<Empty>();
        if (out.size() == 1)
            return std::move(out[0]);
        if (is_seq)
            return std::make_unique<Seq>(std::move(out));
        return std::make_unique<Par>(std::move(out));
      }
      case Control::Kind::If: {
        auto &i = cast<If>(*ctrl);
        ControlPtr t = collapse(std::move(i.trueBranchPtr()));
        ControlPtr f = collapse(std::move(i.falseBranchPtr()));
        if (t->kind() == Control::Kind::Empty &&
            f->kind() == Control::Kind::Empty) {
            return std::make_unique<Empty>();
        }
        return std::make_unique<If>(i.condPort(), i.condGroup(),
                                    std::move(t), std::move(f));
      }
      case Control::Kind::While: {
        auto &w = cast<While>(*ctrl);
        ControlPtr body = collapse(std::move(w.bodyPtr()));
        return std::make_unique<While>(w.condPort(), w.condGroup(),
                                       std::move(body));
      }
    }
    return ctrl;
}

void
CollapseControl::runOnComponent(Component &comp, Context &)
{
    comp.setControl(collapse(comp.takeControl()));
}

namespace {
PassRegistration<CollapseControl> registration{
    "collapse-control",
    "Flatten nested seq/par and drop empty control statements",
    {{"pre-opt", 10}}};
} // namespace

} // namespace calyx::passes
