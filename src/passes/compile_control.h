#ifndef CALYX_PASSES_COMPILE_CONTROL_H
#define CALYX_PASSES_COMPILE_CONTROL_H

#include "passes/pass_manager.h"

namespace calyx::passes {

/**
 * CompileControl (paper §4.2-4.3): bottom-up replacement of every control
 * statement with a compilation group that structurally realizes it using
 * latency-insensitive FSMs:
 *
 *  - seq: a state register stepping through one state per child, advanced
 *    by the child's done signal; done when the register reaches the final
 *    state, which also resets it (so the group works inside loops).
 *  - par: one 1-bit register per child latching its done; children run
 *    while their bit is 0; done when all bits are 1, which resets them.
 *  - if: runs the condition group, latches the 1-bit condition port into
 *    `cs` and sets `cc` ("condition computed"); the branch selected by
 *    `cs` runs; done when the branch is done, which resets `cc`.
 *  - while: like if, but the body's completion clears `cc` so the
 *    condition re-evaluates; done when the latched condition is 0.
 *
 * Generated assignments are gated with the compilation group's own go
 * hole (the equivalent of running GoInsertion on them), so this pass must
 * run after GoInsertion has processed source groups.
 *
 * After this pass each component's control is a single group enable.
 */
class CompileControl final : public Pass
{
  public:
    std::string name() const override { return "compile-control"; }
    void runOnComponent(Component &comp, Context &ctx) override;
};

} // namespace calyx::passes

#endif // CALYX_PASSES_COMPILE_CONTROL_H
