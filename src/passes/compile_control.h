#ifndef CALYX_PASSES_COMPILE_CONTROL_H
#define CALYX_PASSES_COMPILE_CONTROL_H

#include "lowering/lower.h"
#include "passes/pass_manager.h"

namespace calyx::passes {

/**
 * CompileControl (paper §4.2-4.3): thin driver over the control
 * lowering layer (src/lowering/). The control tree of each component is
 * compiled top-down into one flat FsmMachine per dynamic island
 * (build), the machine is cleaned up at the state level (optimize), and
 * materialized as a state register plus decode guards and group enables
 * (realize) — instead of the seed's bottom-up expansion that minted one
 * `std_reg` counter per `seq` node and `cc`/`cs` latches per
 * `if`/`while`. See docs/control.md.
 *
 * Options (pipeline spec `compile-control[k=v]` or `futil -x`):
 *  - encoding=binary|one-hot   state-register encoding (default binary)
 *  - fuse-static=true|false    fuse statically-timed subtrees into
 *                              counter states (default false; the
 *                              `static` pass is the standard route to
 *                              latency-sensitive compilation)
 *  - optimize=true|false       run the FSM optimize stage (default on)
 *
 * Generated assignments are gated with the island group's own go hole,
 * so this pass must run after GoInsertion has processed source groups.
 *
 * After this pass each component's control is a single group enable,
 * and the built machines stay on the component (Component::fsms) for
 * --dump-fsm, the dot FSM view, and --emit-stats.
 */
class CompileControl final : public Pass
{
  public:
    std::string name() const override { return "compile-control"; }
    void option(const std::string &key,
                const std::string &value) override;
    void runOnComponent(Component &comp, Context &ctx) override;

  private:
    lowering::LowerOptions opts;
};

} // namespace calyx::passes

#endif // CALYX_PASSES_COMPILE_CONTROL_H
