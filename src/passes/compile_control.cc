#include "passes/compile_control.h"

#include "passes/registry.h"

#include <set>

#include "passes/go_insertion.h"
#include "support/error.h"

namespace calyx::passes {

namespace {

const PortRef one1 = constant(1, 1);
const PortRef zero1 = constant(0, 1);

/**
 * A group is combinational when its done hole is the constant 1 and it
 * only feeds combinational cells. Such groups (the `with` condition
 * groups of Dahlia-style frontends) are inlined into the compilation
 * group rather than handshaken, mirroring Calyx's comb groups.
 */
bool
isCombGroup(const Group &g)
{
    for (const auto &a : g.assignments()) {
        if (a.dst == g.doneHole()) {
            if (!(a.guard->isTrue() && a.src.isConst() && a.src.value == 1))
                return false;
        }
    }
    return g.hasDoneWrite();
}

/** Bottom-up compiler for one component's control program. */
class ControlCompiler
{
  public:
    ControlCompiler(Component &comp, Context &ctx) : comp(comp), ctx(ctx) {}

    /** Compile `ctrl`, returning the name of the realizing group. */
    std::string
    compile(const Control &ctrl)
    {
        switch (ctrl.kind()) {
          case Control::Kind::Enable:
            return cast<Enable>(ctrl).group();
          case Control::Kind::Empty:
            return compileEmpty();
          case Control::Kind::Seq:
            return compileSeq(cast<Seq>(ctrl));
          case Control::Kind::Par:
            return compilePar(cast<Par>(ctrl));
          case Control::Kind::If:
            return compileIf(cast<If>(ctrl));
          case Control::Kind::While:
            return compileWhile(cast<While>(ctrl));
        }
        panic("bad control kind");
    }

    /** Condition groups that were inlined and can be deleted. */
    const std::set<Symbol> &inlined() const { return inlinedGroups; }

  private:
    Component &comp;
    Context &ctx;
    std::set<Symbol> inlinedGroups;

    static GuardPtr
    port(const PortRef &p)
    {
        return Guard::fromPort(p);
    }

    static GuardPtr
    doneOf(const std::string &group)
    {
        return Guard::fromPort(holePort(group, "done"));
    }

    /** Enable guard for a child: `when & !child[done]`. Deasserting go
     *  during the done cycle keeps state elements from committing twice
     *  (the write enable would otherwise still be high). */
    void
    enableChild(Group &g, const std::string &child, const GuardPtr &when)
    {
        g.add(holePort(child, "go"), one1,
              Guard::conj(when, Guard::negate(doneOf(child))));
    }

    /** A no-op group that completes immediately. */
    std::string
    compileEmpty()
    {
        Group &g = comp.addGroup(comp.uniqueName("nop"));
        g.add(g.doneHole(), one1);
        GoInsertion::gateGroup(g);
        return g.name();
    }

    std::string
    compileSeq(const Seq &seq)
    {
        std::vector<std::string> children;
        for (const auto &c : seq.stmts())
            children.push_back(compile(*c));
        size_t n = children.size();
        if (n == 0)
            return compileEmpty();
        if (n == 1)
            return children[0];

        Width w = fsmWidth(n);
        Cell &fsm = comp.addCell(comp.uniqueName("fsm"), "std_reg", {w},
                                 ctx);
        PortRef fsm_out = cellPort(fsm.name(), "out");
        PortRef fsm_in = cellPort(fsm.name(), "in");
        PortRef fsm_en = cellPort(fsm.name(), "write_en");

        Group &g = comp.addGroup(comp.uniqueName("seq"));
        for (size_t k = 0; k < n; ++k) {
            GuardPtr at_k = Guard::cmp(Guard::CmpOp::Eq, fsm_out,
                                       constant(k, w));
            // Enable child k in state k.
            enableChild(g, children[k], at_k);
            // Advance when child k signals done.
            GuardPtr step = Guard::conj(at_k, doneOf(children[k]));
            g.add(fsm_in, constant(k + 1, w), step);
            g.add(fsm_en, one1, step);
        }
        GuardPtr at_end =
            Guard::cmp(Guard::CmpOp::Eq, fsm_out, constant(n, w));
        g.add(g.doneHole(), one1, at_end);
        GoInsertion::gateGroup(g);
        // Reset for reuse inside loops (paper §4.3). Continuous: the
        // parent deasserts this group's go during its done cycle, so a
        // gated reset would never fire. The final state is transient, so
        // an always-armed reset is safe.
        comp.continuousAssignments().emplace_back(fsm_in, constant(0, w),
                                                  at_end);
        comp.continuousAssignments().emplace_back(fsm_en, one1, at_end);
        return g.name();
    }

    std::string
    compilePar(const Par &par)
    {
        std::vector<std::string> children;
        for (const auto &c : par.stmts())
            children.push_back(compile(*c));
        size_t n = children.size();
        if (n == 0)
            return compileEmpty();
        if (n == 1)
            return children[0];

        Group &g = comp.addGroup(comp.uniqueName("par"));
        GuardPtr all_done = Guard::trueGuard();
        std::vector<std::string> pds;
        for (size_t k = 0; k < n; ++k) {
            Cell &pd =
                comp.addCell(comp.uniqueName("pd"), "std_reg", {1}, ctx);
            pds.push_back(pd.name());
            PortRef pd_out = cellPort(pd.name(), "out");
            // Run the child until its completion has been recorded.
            enableChild(g, children[k], Guard::negate(port(pd_out)));
            // Latch the child's done pulse.
            GuardPtr child_done = doneOf(children[k]);
            g.add(cellPort(pd.name(), "in"), one1, child_done);
            g.add(cellPort(pd.name(), "write_en"), one1, child_done);
            all_done = Guard::conj(all_done, port(pd_out));
        }
        g.add(g.doneHole(), one1, all_done);
        GoInsertion::gateGroup(g);
        // Reset the completion bits once the whole par is done
        // (continuous for the same reason as in compileSeq).
        for (const auto &pd : pds) {
            comp.continuousAssignments().emplace_back(cellPort(pd, "in"),
                                                      zero1, all_done);
            comp.continuousAssignments().emplace_back(
                cellPort(pd, "write_en"), one1, all_done);
        }
        return g.name();
    }

    /**
     * Shared condition machinery for if/while. Latches the 1-bit
     * condition port into `cs` and sets `cc` ("condition computed").
     * Combinational condition groups are inlined under the evaluation
     * guard; sequential ones are handshaken (their condition port must
     * then be register-backed so it survives into the latch cycle).
     */
    struct CondRegs
    {
        std::string cc, cs;
        GuardPtr condDone, taken, notTaken;
        GuardPtr ccOut;
    };

    CondRegs
    buildCond(Group &g, const PortRef &cond_port,
              const std::string &cond_group)
    {
        CondRegs regs;
        Cell &cc = comp.addCell(comp.uniqueName("cc"), "std_reg", {1}, ctx);
        Cell &cs = comp.addCell(comp.uniqueName("cs"), "std_reg", {1}, ctx);
        regs.cc = cc.name();
        regs.cs = cs.name();

        GuardPtr cc_out = port(cellPort(cc.name(), "out"));
        GuardPtr cs_out = port(cellPort(cs.name(), "out"));
        GuardPtr not_computed = Guard::negate(cc_out);

        if (cond_group.empty()) {
            // The port is continuously driven; latch it right away.
            regs.condDone = not_computed;
        } else {
            Group &cond = comp.group(cond_group);
            if (isCombGroup(cond)) {
                // Inline the combinational condition under the
                // evaluation guard; it completes in the same cycle.
                for (const auto &a : cond.assignments()) {
                    if (a.dst == cond.doneHole())
                        continue;
                    // GoInsertion already gated these with cond[go],
                    // which will never be driven once inlined; replace
                    // that gate with the evaluation guard.
                    GuardPtr guard = Guard::substPort(
                        a.guard, Guard::fromPort(cond.goHole())->port(),
                        Guard::trueGuard());
                    g.add(a.dst, a.src, Guard::conj(guard, not_computed));
                }
                inlinedGroups.insert(cond_group);
                regs.condDone = not_computed;
            } else {
                enableChild(g, cond_group, not_computed);
                regs.condDone =
                    Guard::conj(not_computed, doneOf(cond_group));
            }
        }
        // Save the condition value and mark it computed (paper §4.3).
        g.add(cellPort(cs.name(), "in"), cond_port, regs.condDone);
        g.add(cellPort(cs.name(), "write_en"), one1, regs.condDone);
        g.add(cellPort(cc.name(), "in"), one1, regs.condDone);
        g.add(cellPort(cc.name(), "write_en"), one1, regs.condDone);

        regs.taken = Guard::conj(cc_out, cs_out);
        regs.notTaken = Guard::conj(cc_out, Guard::negate(cs_out));
        regs.ccOut = cc_out;
        return regs;
    }

    std::string
    compileIf(const If &stmt)
    {
        bool has_true = stmt.trueBranch().kind() != Control::Kind::Empty;
        bool has_false = stmt.falseBranch().kind() != Control::Kind::Empty;
        std::string tg = has_true ? compile(stmt.trueBranch()) : "";
        std::string fg = has_false ? compile(stmt.falseBranch()) : "";

        Group &g = comp.addGroup(comp.uniqueName("if"));
        CondRegs regs = buildCond(g, stmt.condPort(), stmt.condGroup());

        GuardPtr true_done = regs.taken;
        if (has_true) {
            enableChild(g, tg, regs.taken);
            true_done = Guard::conj(regs.taken, doneOf(tg));
        }
        GuardPtr false_done = regs.notTaken;
        if (has_false) {
            enableChild(g, fg, regs.notTaken);
            false_done = Guard::conj(regs.notTaken, doneOf(fg));
        }
        GuardPtr fin = Guard::disj(true_done, false_done);
        g.add(g.doneHole(), one1, fin);
        GoInsertion::gateGroup(g);
        // Reset the computed bit for reuse inside loops (continuous; the
        // guard can only be true while this statement is completing).
        comp.continuousAssignments().emplace_back(cellPort(regs.cc, "in"),
                                                  zero1, fin);
        comp.continuousAssignments().emplace_back(
            cellPort(regs.cc, "write_en"), one1, fin);
        return g.name();
    }

    std::string
    compileWhile(const While &stmt)
    {
        bool has_body = stmt.body().kind() != Control::Kind::Empty;
        std::string bg = has_body ? compile(stmt.body()) : "";

        Group &g = comp.addGroup(comp.uniqueName("while"));
        CondRegs regs = buildCond(g, stmt.condPort(), stmt.condGroup());

        GuardPtr body_done = regs.taken;
        if (has_body) {
            enableChild(g, bg, regs.taken);
            body_done = Guard::conj(regs.taken, doneOf(bg));
        }
        g.add(g.doneHole(), one1, regs.notTaken);
        GoInsertion::gateGroup(g);
        // After an iteration, clear cc so the condition re-evaluates; on
        // exit, clear cc so the loop can run again (paper §4.3).
        GuardPtr clear = Guard::disj(body_done, regs.notTaken);
        comp.continuousAssignments().emplace_back(cellPort(regs.cc, "in"),
                                                  zero1, clear);
        comp.continuousAssignments().emplace_back(
            cellPort(regs.cc, "write_en"), one1, clear);
        return g.name();
    }
};

} // namespace

void
CompileControl::runOnComponent(Component &comp, Context &ctx)
{
    if (comp.control().kind() == Control::Kind::Empty)
        return;
    ControlCompiler compiler(comp, ctx);
    std::string top = compiler.compile(comp.control());
    comp.setControl(std::make_unique<Enable>(top));

    // Delete inlined combinational condition groups unless something
    // still references their holes (e.g. a static region's schedule).
    for (const auto &name : compiler.inlined()) {
        if (name == top)
            continue;
        bool referenced = false;
        auto check = [&](const PortRef &p) {
            if (p.isHole() && p.parent == name)
                referenced = true;
        };
        for (const auto &g : comp.groups()) {
            if (g->name() == name)
                continue;
            for (const auto &a : g->assignments()) {
                check(a.dst);
                a.reads(check);
            }
        }
        for (const auto &a : comp.continuousAssignments()) {
            check(a.dst);
            a.reads(check);
        }
        if (!referenced)
            comp.removeGroup(name);
    }
}

namespace {
PassRegistration<CompileControl> registration{
    "compile-control",
    "Lower the control tree to latency-insensitive FSMs (§4.2-4.3)",
    {{"compile", 30}}};
} // namespace

} // namespace calyx::passes
