#include "passes/compile_control.h"

#include "passes/registry.h"

#include <set>

#include "support/error.h"
#include "support/time.h"

namespace calyx::passes {

namespace {

bool
parseBool(const std::string &pass, const std::string &key,
          const std::string &value)
{
    if (value == "true" || value == "on" || value == "1")
        return true;
    if (value == "false" || value == "off" || value == "0")
        return false;
    fatal(pass, " option ", key, ": expected true/false, got '", value,
          "'");
}

} // namespace

void
CompileControl::option(const std::string &key, const std::string &value)
{
    if (key == "encoding") {
        if (value == "binary")
            opts.realize.encoding = FsmEncoding::Binary;
        else if (value == "one-hot")
            opts.realize.encoding = FsmEncoding::OneHot;
        else
            fatal("compile-control option encoding: expected binary or "
                  "one-hot, got '", value, "'");
        return;
    }
    if (key == "fuse-static") {
        opts.build.fuseStatic = parseBool(name(), key, value);
        return;
    }
    if (key == "optimize") {
        opts.optimize = parseBool(name(), key, value);
        return;
    }
    Pass::option(key, value);
}

void
CompileControl::runOnComponent(Component &comp, Context &ctx)
{
    if (comp.control().kind() == Control::Kind::Empty)
        return;
    if (comp.control().kind() == Control::Kind::Enable)
        return; // already a single island group

    double t0 = nowSeconds();
    int seed_regs = lowering::seedControlRegisters(comp.control());
    std::set<Symbol> inlined;
    Symbol top =
        lowering::lowerControl(comp, ctx, comp.control(), opts, inlined);
    comp.setControl(std::make_unique<Enable>(top));
    comp.noteFsmLowering(seed_regs, nowSeconds() - t0);

    // Delete inlined combinational condition groups unless something
    // still references their holes (e.g. a static region's schedule).
    for (const auto &name : inlined) {
        if (name == top)
            continue;
        bool referenced = false;
        auto check = [&](const PortRef &p) {
            if (p.isHole() && p.parent == name)
                referenced = true;
        };
        for (const auto &g : comp.groups()) {
            if (g->name() == name)
                continue;
            for (const auto &a : g->assignments()) {
                check(a.dst);
                a.reads(check);
            }
        }
        for (const auto &a : comp.continuousAssignments()) {
            check(a.dst);
            a.reads(check);
        }
        if (!referenced)
            comp.removeGroup(name);
    }
}

namespace {
PassRegistration<CompileControl> registration{
    "compile-control",
    "Lower control through the FSM IR: build/optimize/realize (§4.2-4.3)",
    {{"compile", 30}}};
} // namespace

} // namespace calyx::passes
