#include "passes/wellformed.h"

#include "passes/registry.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "ir/defuse.h"
#include "support/error.h"
#include "support/text.h"

namespace calyx::passes {

namespace {

/** Whether `ref` may appear on the left-hand side of an assignment. */
void
checkWritable(const Component &comp, const PortRef &ref,
              const std::string &where)
{
    switch (ref.kind) {
      case PortRef::Kind::Const:
        fatal(comp.name(), "/", where, ": constant on assignment lhs");
      case PortRef::Kind::Hole:
        if (ref.port != "go" && ref.port != "done")
            fatal(comp.name(), "/", where, ": unknown hole ", ref.str());
        return;
      case PortRef::Kind::This:
        if (comp.port(ref.port).dir != Direction::Output)
            fatal(comp.name(), "/", where, ": write to input port ",
                  ref.str());
        return;
      case PortRef::Kind::Cell:
        if (comp.cell(ref.parent).portDir(ref.port) != Direction::Input)
            fatal(comp.name(), "/", where, ": write to cell output ",
                  ref.str());
        return;
    }
}

/** Whether `ref` may be read. */
void
checkReadable(const Component &comp, const PortRef &ref,
              const std::string &where)
{
    switch (ref.kind) {
      case PortRef::Kind::Const:
        return;
      case PortRef::Kind::Hole:
        if (ref.port != "go" && ref.port != "done")
            fatal(comp.name(), "/", where, ": unknown hole ", ref.str());
        if (!comp.findGroup(ref.parent))
            fatal(comp.name(), "/", where, ": hole of unknown group ",
                  ref.str());
        return;
      case PortRef::Kind::This:
        if (comp.port(ref.port).dir != Direction::Input)
            fatal(comp.name(), "/", where, ": read of output port ",
                  ref.str());
        return;
      case PortRef::Kind::Cell:
        if (comp.cell(ref.parent).portDir(ref.port) != Direction::Output)
            fatal(comp.name(), "/", where, ": read of cell input ",
                  ref.str());
        return;
    }
}

void
checkGuard(const Component &comp, const GuardPtr &g,
           const std::string &where)
{
    switch (g->kind()) {
      case Guard::Kind::True:
        return;
      case Guard::Kind::Port:
        checkReadable(comp, g->port(), where);
        if (comp.portWidth(g->port()) != 1)
            fatal(comp.name(), "/", where, ": guard port ",
                  g->port().str(), " is not 1-bit");
        return;
      case Guard::Kind::Cmp: {
        if (!g->lhs().isConst())
            checkReadable(comp, g->lhs(), where);
        if (!g->rhs().isConst())
            checkReadable(comp, g->rhs(), where);
        Width lw = comp.portWidth(g->lhs());
        Width rw = comp.portWidth(g->rhs());
        if (lw != rw)
            fatal(comp.name(), "/", where, ": comparison width mismatch ",
                  g->lhs().str(), " (", lw, ") vs ", g->rhs().str(), " (",
                  rw, ")");
        return;
      }
      case Guard::Kind::Not:
        checkGuard(comp, g->left(), where);
        return;
      case Guard::Kind::And:
      case Guard::Kind::Or:
        checkGuard(comp, g->left(), where);
        checkGuard(comp, g->right(), where);
        return;
    }
}

void
checkAssignments(const Component &comp,
                 const std::vector<Assignment> &assigns,
                 const std::string &where)
{
    std::set<PortRef> unconditional;
    for (const auto &a : assigns) {
        checkWritable(comp, a.dst, where);
        checkReadable(comp, a.src, where);
        checkGuard(comp, a.guard, where);
        Width dw = comp.portWidth(a.dst);
        Width sw = comp.portWidth(a.src);
        if (dw != sw) {
            fatal(comp.name(), "/", where, ": width mismatch in '",
                  a.str(), "' (", dw, " vs ", sw, ")");
        }
        if (a.guard->isTrue()) {
            if (unconditional.count(a.dst)) {
                fatal(comp.name(), "/", where,
                      ": two unconditional drivers for ", a.dst.str());
            }
            unconditional.insert(a.dst);
        }
    }
}

void
checkControl(const Component &comp, const Control &ctrl)
{
    ctrl.walk([&comp](const Control &node) {
        auto check_group = [&comp](const std::string &g,
                                   bool needs_done) {
            const Group *group = comp.findGroup(g);
            if (!group)
                fatal(comp.name(), ": control references unknown group ",
                      g);
            if (needs_done && !group->hasDoneWrite())
                fatal(comp.name(), ": group ", g,
                      " is enabled but never writes its done hole");
        };
        auto check_cond_port = [&comp](const PortRef &p) {
            if (p.isConst())
                fatal(comp.name(), ": constant condition port");
            if (comp.portWidth(p) != 1)
                fatal(comp.name(), ": condition port ", p.str(),
                      " is not 1-bit");
        };
        switch (node.kind()) {
          case Control::Kind::Enable:
            check_group(cast<Enable>(node).group(), true);
            break;
          case Control::Kind::If: {
            const auto &i = cast<If>(node);
            if (!i.condGroup().empty())
                check_group(i.condGroup(), true);
            check_cond_port(i.condPort());
            break;
          }
          case Control::Kind::While: {
            const auto &w = cast<While>(node);
            if (!w.condGroup().empty())
                check_group(w.condGroup(), true);
            check_cond_port(w.condPort());
            break;
          }
          default:
            break;
        }
    });
}

const char *
controlKindName(Control::Kind kind)
{
    switch (kind) {
      case Control::Kind::Enable:
        return "enable";
      case Control::Kind::If:
        return "if";
      case Control::Kind::While:
        return "while";
      default:
        return "control";
    }
}

/**
 * Dangling-reference sweep over the DefUse index: removeCell and
 * removeGroup do not rewrite surviving references, so any use of a
 * name with no definition is reported with the component and the exact
 * referencing site (the group + assignment text, or the control
 * statement kind).
 */
void
checkDanglingRefs(const Component &comp)
{
    const DefUse &du = comp.defUse();
    std::vector<std::string> problems;

    // A dangling name is often a typo for a live one; suggest it.
    auto suggest = [&comp](Symbol sym, bool want_group) {
        std::vector<std::string> known;
        if (want_group) {
            for (const auto &g : comp.groups())
                known.push_back(g->name().str());
        } else {
            for (const auto &c : comp.cells())
                known.push_back(c->name().str());
        }
        std::string close = suggestClosest(sym.str(), known);
        return close.empty() ? std::string()
                             : " (did you mean '" + close + "'?)";
    };

    auto site_text = [&comp](const DefUse::AssignSite &site) {
        const Assignment &a =
            site.group.empty()
                ? comp.continuousAssignments()[site.index]
                : comp.group(site.group).assignments()[site.index];
        std::string where = site.group.empty()
                                ? std::string("continuous assignments")
                                : "group '" + site.group + "'";
        return where + ", assignment '" + a.str() + "'";
    };

    for (const auto &[sym, uses] : du.entries()) {
        bool is_cell = comp.findCell(sym) != nullptr;
        bool is_group = comp.findGroup(sym) != nullptr;
        for (const auto &site : uses.assigns) {
            if ((site.roles & DefUse::kAnyCell) && !is_cell) {
                problems.push_back("dangling reference to cell '" +
                                   sym.str() + "' in " + site_text(site) +
                                   suggest(sym, false));
            }
            if ((site.roles & DefUse::kAnyHole) && !is_group) {
                problems.push_back("dangling reference to group '" +
                                   sym.str() + "' hole in " +
                                   site_text(site) + suggest(sym, true));
            }
        }
        for (const auto &use : uses.control) {
            if (use.asGroup && !is_group) {
                problems.push_back(
                    "dangling reference to group '" + sym.str() + "' in " +
                    controlKindName(use.node->kind()) +
                    " control statement" + suggest(sym, true));
            }
            if (!use.asGroup && !is_cell) {
                problems.push_back("dangling reference to cell '" +
                                   sym.str() + "' in " +
                                   controlKindName(use.node->kind()) +
                                   " condition port" + suggest(sym, false));
            }
        }
    }
    if (problems.empty())
        return;
    // The index iterates in hash order; sort for a stable report.
    std::sort(problems.begin(), problems.end());
    std::string msg = problems[0];
    if (problems.size() > 1) {
        msg += " (and " + std::to_string(problems.size() - 1) +
               " more dangling reference(s))";
    }
    fatal(comp.name(), ": ", msg);
}

} // namespace

void
WellFormed::runOnComponent(Component &comp, Context &)
{
    const Component &c = comp;
    // A maintained DefUse index must agree with a fresh recompute
    // before the dangling sweep (or any pass) trusts it.
    verifyDefUse(c);
    checkDanglingRefs(c);
    for (const auto &g : c.groups())
        checkAssignments(c, std::as_const(*g).assignments(),
                         "group " + g->name());
    checkAssignments(c, c.continuousAssignments(), "wires");
    checkControl(c, c.control());
}

namespace {
PassRegistration<WellFormed> registration{
    "well-formed",
    "Validate structural well-formedness of the IL (§3)",
    {}};
} // namespace

} // namespace calyx::passes
