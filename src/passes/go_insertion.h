#ifndef CALYX_PASSES_GO_INSERTION_H
#define CALYX_PASSES_GO_INSERTION_H

#include "passes/pass_manager.h"

namespace calyx::passes {

/**
 * GoInsertion (paper §4.2): guards every assignment inside a group with
 * the group's own go hole, so that once groups are erased the guards
 * alone decide which assignments are active. Writes to the group's own
 * done hole stay unguarded (Figure 2b) so parents can always observe
 * completion; CompileControl in turn deasserts a child's go during its
 * done cycle, which prevents state elements from committing twice.
 */
class GoInsertion final : public Pass
{
  public:
    std::string name() const override { return "go-insertion"; }
    void runOnComponent(Component &comp, Context &ctx) override;

    /** Gate one group's assignments (used by CompileControl too). */
    static void gateGroup(Group &group);
};

} // namespace calyx::passes

#endif // CALYX_PASSES_GO_INSERTION_H
