#include "passes/registry.h"

#include <algorithm>
#include <set>

#include "support/error.h"

namespace calyx::passes {

namespace {

/** Classic Levenshtein distance, for did-you-mean suggestions. */
size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<size_t> prev(b.size() + 1), cur(b.size() + 1);
    for (size_t j = 0; j <= b.size(); ++j)
        prev[j] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
        cur[0] = i;
        for (size_t j = 1; j <= b.size(); ++j) {
            size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
        }
        std::swap(prev, cur);
    }
    return prev[b.size()];
}

} // namespace

PassRegistry::PassRegistry()
{
    // Composite aliases. `default` is the standard pipeline that
    // CompileOptions{} historically selected; `all` additionally runs
    // every optimization pass (the old `futil -p all`).
    composites["default"] = {
        "well-formed,collapse-control,infer-latency,go-insertion,"
        "compile-control,remove-groups,dead-cell-removal",
        "Standard pipeline without optional optimizations"};
    composites["all"] = {"well-formed,pre-opt,compile,post-opt",
                         "Full pipeline including every optimization pass"};
}

PassRegistry &
PassRegistry::instance()
{
    static PassRegistry registry;
    return registry;
}

void
PassRegistry::registerPass(Entry entry)
{
    if (entries.count(entry.name))
        fatal("pass '", entry.name, "' registered twice");
    if (composites.count(entry.name))
        fatal("pass '", entry.name, "' collides with an alias");
    std::string name = entry.name;
    entries.emplace(std::move(name), std::move(entry));
}

void
PassRegistry::registerAlias(const std::string &name,
                            const std::string &expansion,
                            const std::string &description)
{
    if (entries.count(name))
        fatal("alias '", name, "' collides with a pass");
    composites[name] = {expansion, description};
}

bool
PassRegistry::hasPass(const std::string &name) const
{
    return entries.count(name) > 0;
}

bool
PassRegistry::hasAlias(const std::string &name) const
{
    if (composites.count(name))
        return true;
    for (const auto &[_, e] : entries)
        for (const auto &m : e.aliases)
            if (m.alias == name)
                return true;
    return false;
}

const PassRegistry::Entry *
PassRegistry::findPass(const std::string &name) const
{
    auto it = entries.find(name);
    return it == entries.end() ? nullptr : &it->second;
}

std::unique_ptr<Pass>
PassRegistry::create(const std::string &name) const
{
    const Entry *e = findPass(name);
    if (!e) {
        std::string hint = suggest(name);
        fatal("unknown pass '", name, "'",
              hint.empty() ? "" : " (did you mean '" + hint + "'?)",
              "; run with --list-passes for the full list");
    }
    return e->factory();
}

std::string
PassRegistry::aliasExpansion(const std::string &name) const
{
    auto it = composites.find(name);
    if (it != composites.end())
        return it->second.expansion;

    // Group alias: members sorted by (order, name) for determinism.
    std::vector<std::pair<int, std::string>> members;
    for (const auto &[pass_name, e] : entries)
        for (const auto &m : e.aliases)
            if (m.alias == name)
                members.emplace_back(m.order, pass_name);
    if (members.empty())
        fatal("unknown alias '", name, "'");
    std::sort(members.begin(), members.end());

    std::string spec;
    for (const auto &[_, pass_name] : members) {
        if (!spec.empty())
            spec += ",";
        spec += pass_name;
    }
    return spec;
}

std::vector<std::string>
PassRegistry::passNames() const
{
    std::vector<std::string> names;
    for (const auto &[name, _] : entries)
        names.push_back(name);
    return names; // std::map iteration is already sorted
}

std::vector<std::string>
PassRegistry::aliasNames() const
{
    std::set<std::string> names;
    for (const auto &[name, _] : composites)
        names.insert(name);
    for (const auto &[_, e] : entries)
        for (const auto &m : e.aliases)
            names.insert(m.alias);
    return {names.begin(), names.end()};
}

std::string
PassRegistry::aliasDescription(const std::string &name) const
{
    auto it = composites.find(name);
    return it == composites.end() ? "" : it->second.description;
}

std::vector<std::string>
PassRegistry::aliasesOf(const std::string &pass) const
{
    std::vector<std::string> names;
    const Entry *e = findPass(pass);
    if (!e)
        return names;
    for (const auto &m : e->aliases)
        names.push_back(m.alias);
    std::sort(names.begin(), names.end());
    return names;
}

std::string
PassRegistry::suggest(const std::string &unknown) const
{
    std::string best;
    size_t best_distance = std::string::npos;
    std::vector<std::string> candidates = passNames();
    for (const auto &a : aliasNames())
        candidates.push_back(a);
    for (const auto &candidate : candidates) {
        size_t d = editDistance(unknown, candidate);
        if (d < best_distance) {
            best_distance = d;
            best = candidate;
        }
    }
    // Only suggest plausible typos: at most 2 edits, or one third of
    // the name for long names.
    size_t budget = std::max<size_t>(2, unknown.size() / 3);
    return best_distance <= budget ? best : "";
}

} // namespace calyx::passes
