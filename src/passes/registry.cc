#include "passes/registry.h"

#include <algorithm>
#include <set>

#include "support/error.h"
#include "support/text.h"

namespace calyx::passes {

PassRegistry::PassRegistry()
{
    // Composite aliases. `default` is the standard pipeline that
    // CompileOptions{} historically selected; `all` additionally runs
    // every optimization pass (the old `futil -p all`).
    composites["default"] = {
        "well-formed,collapse-control,infer-latency,go-insertion,"
        "compile-control,remove-groups,dead-cell-removal",
        "Standard pipeline without optional optimizations"};
    composites["all"] = {"well-formed,pre-opt,compile,post-opt",
                         "Full pipeline including every optimization pass"};
}

PassRegistry &
PassRegistry::instance()
{
    static PassRegistry registry;
    return registry;
}

void
PassRegistry::registerPass(Entry entry)
{
    if (entries.count(entry.name))
        fatal("pass '", entry.name, "' registered twice");
    if (composites.count(entry.name))
        fatal("pass '", entry.name, "' collides with an alias");
    std::string name = entry.name;
    entries.emplace(std::move(name), std::move(entry));
}

void
PassRegistry::registerAlias(const std::string &name,
                            const std::string &expansion,
                            const std::string &description)
{
    if (entries.count(name))
        fatal("alias '", name, "' collides with a pass");
    composites[name] = {expansion, description};
}

bool
PassRegistry::hasPass(const std::string &name) const
{
    return entries.count(name) > 0;
}

bool
PassRegistry::hasAlias(const std::string &name) const
{
    if (composites.count(name))
        return true;
    for (const auto &[_, e] : entries)
        for (const auto &m : e.aliases)
            if (m.alias == name)
                return true;
    return false;
}

const PassRegistry::Entry *
PassRegistry::findPass(const std::string &name) const
{
    auto it = entries.find(name);
    return it == entries.end() ? nullptr : &it->second;
}

std::unique_ptr<Pass>
PassRegistry::create(const std::string &name) const
{
    const Entry *e = findPass(name);
    if (!e) {
        std::string hint = suggest(name);
        fatal("unknown pass '", name, "'",
              hint.empty() ? "" : " (did you mean '" + hint + "'?)",
              "; run with --list-passes for the full list");
    }
    return e->factory();
}

std::string
PassRegistry::aliasExpansion(const std::string &name) const
{
    auto it = composites.find(name);
    if (it != composites.end())
        return it->second.expansion;

    // Group alias: members sorted by (order, name) for determinism.
    std::vector<std::pair<int, std::string>> members;
    for (const auto &[pass_name, e] : entries)
        for (const auto &m : e.aliases)
            if (m.alias == name)
                members.emplace_back(m.order, pass_name);
    if (members.empty())
        fatal("unknown alias '", name, "'");
    std::sort(members.begin(), members.end());

    std::string spec;
    for (const auto &[_, pass_name] : members) {
        if (!spec.empty())
            spec += ",";
        spec += pass_name;
    }
    return spec;
}

std::vector<std::string>
PassRegistry::passNames() const
{
    std::vector<std::string> names;
    for (const auto &[name, _] : entries)
        names.push_back(name);
    return names; // std::map iteration is already sorted
}

std::vector<std::string>
PassRegistry::aliasNames() const
{
    std::set<std::string> names;
    for (const auto &[name, _] : composites)
        names.insert(name);
    for (const auto &[_, e] : entries)
        for (const auto &m : e.aliases)
            names.insert(m.alias);
    return {names.begin(), names.end()};
}

std::string
PassRegistry::aliasDescription(const std::string &name) const
{
    auto it = composites.find(name);
    return it == composites.end() ? "" : it->second.description;
}

std::vector<std::string>
PassRegistry::aliasesOf(const std::string &pass) const
{
    std::vector<std::string> names;
    const Entry *e = findPass(pass);
    if (!e)
        return names;
    for (const auto &m : e->aliases)
        names.push_back(m.alias);
    std::sort(names.begin(), names.end());
    return names;
}

std::string
PassRegistry::suggest(const std::string &unknown) const
{
    std::vector<std::string> candidates = passNames();
    for (const auto &a : aliasNames())
        candidates.push_back(a);
    return suggestClosest(unknown, candidates);
}

} // namespace calyx::passes
