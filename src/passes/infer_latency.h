#ifndef CALYX_PASSES_INFER_LATENCY_H
#define CALYX_PASSES_INFER_LATENCY_H

#include "passes/pass_manager.h"

namespace calyx::passes {

/**
 * InferLatency (paper §5.3): conservatively infer "static" attributes so
 * the Sensitive pass can build latency-sensitive FSMs even when the
 * frontend supplied no annotations.
 *
 * Group rule: if a group's done hole equals a cell's done signal, the
 * group unconditionally drives that cell's go signal with 1, and the
 * cell's prototype advertises a latency, the group has that latency.
 * A group whose done is the constant 1 is combinational (latency 1).
 *
 * Component rule: if a component's whole control program is static, the
 * component itself gets the total as its latency, and instance cells of
 * that component are re-stamped, so latency flows bottom-up through the
 * hierarchy (this is what makes the systolic arrays of §6.1 fully
 * inferable when only the PE carries an annotation).
 */
class InferLatency final : public Pass
{
  public:
    std::string name() const override { return "infer-latency"; }
    void runOnComponent(Component &comp, Context &ctx) override;
};

} // namespace calyx::passes

#endif // CALYX_PASSES_INFER_LATENCY_H
