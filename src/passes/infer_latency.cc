#include "passes/infer_latency.h"

#include "passes/registry.h"

#include "passes/static_pass.h"

namespace calyx::passes {

namespace {

/** Latency attribute of the prototype behind `cell`, if any. */
std::optional<int64_t>
cellLatency(const Cell &cell, const Context &ctx)
{
    if (cell.isPrimitive()) {
        const PrimitiveDef &def = ctx.primitives().get(cell.type());
        if (def.donePort.empty())
            return std::nullopt;
        return def.attrs.find(Attributes::staticAttr);
    }
    const Component *def = ctx.findComponent(cell.type());
    if (!def)
        return std::nullopt;
    return def->staticLatency();
}

/** The go-equivalent port name for `cell` (write_en for registers). */
std::string
goPortOf(const Cell &cell, const Context &ctx)
{
    if (cell.isPrimitive())
        return ctx.primitives().get(cell.type()).goPort;
    return "go";
}

/** The done port name for `cell`. */
std::string
donePortOf(const Cell &cell, const Context &ctx)
{
    if (cell.isPrimitive())
        return ctx.primitives().get(cell.type()).donePort;
    return "done";
}

void
inferGroup(Group &group, const Component &comp, const Context &ctx)
{
    if (group.staticLatency())
        return; // Frontend annotation wins.

    // Locate the unique unconditional done write.
    const Assignment *done_write = nullptr;
    for (const auto &a : group.assignments()) {
        if (a.dst == group.doneHole()) {
            if (done_write)
                return; // Multiple done writes: too complex.
            if (!a.guard->isTrue())
                return;
            done_write = &a;
        }
    }
    if (!done_write)
        return;

    // Combinational group: done is the constant 1.
    if (done_write->src.isConst()) {
        if (done_write->src.value == 1)
            group.attrs().set(Attributes::staticAttr, 1);
        return;
    }

    // done = cell.done, with cell.go = 1 inside the group.
    if (!done_write->src.isCell())
        return;
    const Cell *cell = comp.findCell(done_write->src.parent);
    if (!cell)
        return;
    if (done_write->src.port != donePortOf(*cell, ctx))
        return;
    auto latency = cellLatency(*cell, ctx);
    if (!latency)
        return;
    std::string go_port = goPortOf(*cell, ctx);
    for (const auto &a : group.assignments()) {
        if (!(a.dst.isCell() && a.dst.parent == cell->name() &&
              a.dst.port == go_port && a.src.isConst() && a.src.value == 1))
            continue;
        // Accept `cell.go = 1` and the idiomatic `cell.go = !cell.done ? 1`.
        bool guard_ok = a.guard->isTrue();
        if (!guard_ok && a.guard->kind() == Guard::Kind::Not &&
            a.guard->left()->kind() == Guard::Kind::Port) {
            guard_ok = a.guard->left()->port() == done_write->src;
        }
        if (guard_ok) {
            group.attrs().set(Attributes::staticAttr, *latency);
            return;
        }
    }
}

} // namespace

void
InferLatency::runOnComponent(Component &comp, Context &ctx)
{
    // Refresh instance-cell latencies: callees are processed first (the
    // pass manager visits components in dependency order), so their
    // inferred latencies are available now.
    for (const auto &cell : comp.cells()) {
        if (cell->isPrimitive())
            continue;
        const Component *def = ctx.findComponent(cell->type());
        if (def) {
            if (auto l = def->staticLatency())
                cell->attrs().set(Attributes::staticAttr, *l);
        }
    }

    for (const auto &group : comp.groups())
        inferGroup(*group, comp, ctx);

    if (!comp.staticLatency()) {
        if (auto total = StaticPass::latencyOf(comp.control(), comp);
            total && *total > 0) {
            comp.attrs().set(Attributes::staticAttr, *total);
        }
    }
}

namespace {
PassRegistration<InferLatency> registration{
    "infer-latency",
    "Infer 'static' latency attributes for groups and components (§5.3)",
    {{"pre-opt", 20}}};
} // namespace

} // namespace calyx::passes
