#include "passes/design_stats.h"

#include "ir/control.h"

namespace calyx::passes {

DesignStats
gatherStats(const Component &comp)
{
    DesignStats s;
    s.cells = static_cast<int>(comp.cells().size());
    s.groups = static_cast<int>(comp.groups().size());
    s.controlStatements = countControlStatements(comp.control());
    return s;
}

DesignStats
gatherStats(const Context &ctx)
{
    DesignStats total;
    for (const auto &comp : ctx.components()) {
        DesignStats s = gatherStats(*comp);
        total.cells += s.cells;
        total.groups += s.groups;
        total.controlStatements += s.controlStatements;
    }
    return total;
}

} // namespace calyx::passes
