#ifndef CALYX_PASSES_PASS_MANAGER_H
#define CALYX_PASSES_PASS_MANAGER_H

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "ir/context.h"
#include "passes/design_stats.h"

namespace calyx::passes {

/**
 * Base class for compiler passes (paper §4: "an open-source pass-based
 * compiler"). Most passes are per-component; whole-program passes
 * override runOnContext. The default context traversal visits components
 * in dependency order so information can flow from callees to callers
 * (e.g. inferred component latencies).
 */
class Pass
{
  public:
    virtual ~Pass() = default;

    /** Stable kebab-case name, also the registry key. */
    virtual std::string name() const = 0;

    /**
     * Configure the pass from a string key/value (the `[k=v]` syntax of
     * pipeline specs and the driver's `-x`). The default implementation
     * rejects every key; passes with options override it.
     */
    virtual void option(const std::string &key, const std::string &value);

    virtual void runOnComponent(Component &comp, Context &ctx);

    virtual void runOnContext(Context &ctx);

    /**
     * Whether runOnComponent may be dispatched across components in
     * parallel (RunOptions::threads). True for the default traversal:
     * every core pass confines its mutations and analysis state
     * (DefUse, uniqueName counters) to the component it was handed,
     * reads other components only through instantiation edges (callee
     * signatures and latency attributes), and Symbol interning is
     * thread-safe. The parallel traversal preserves those dependency
     * reads by running components in wavefronts of the instantiation
     * DAG (docs/service.md). A pass that overrides runOnContext to do
     * whole-program work must also override this to return false, so
     * it runs as a serial barrier between parallel passes.
     */
    virtual bool componentParallel() const { return true; }
};

/** Instrumentation record for one executed pass. */
struct PassRunInfo
{
    std::string pass;
    /** Wall-clock time spent in the pass. */
    double seconds = 0.0;
    /** Whole-program stats around the pass (only with collectStats). */
    DesignStats before, after;
};

/** Instrumentation and validation settings for PassManager::run. */
struct RunOptions
{
    /** Run the WellFormed checker after every pass; failures name the
     * offending pass and component. */
    bool verify = false;
    /** Gather DesignStats before/after each pass (extra IR walks). */
    bool collectStats = false;
    /** When non-empty, print the IR after every pass with this name. */
    std::string dumpIrAfter;
    /** Stream for dumpIrAfter (defaults to std::cerr when null). */
    std::ostream *dumpTo = nullptr;
    /**
     * Worker threads for per-component pass execution. With threads > 1
     * each componentParallel() pass dispatches the components of one
     * dependency wavefront concurrently over the shared WorkPool;
     * passes that opt out (and verification, stats collection, and IR
     * dumps) stay serial, so PassRunInfo aggregates deterministically.
     */
    unsigned threads = 1;
};

/** Runs a pipeline of passes with optional validation/instrumentation. */
class PassManager
{
  public:
    /** Append a pass. Returns *this for chaining. */
    PassManager &add(std::unique_ptr<Pass> pass);

    template <typename P, typename... Args>
    PassManager &
    add(Args &&...args)
    {
        return add(std::make_unique<P>(std::forward<Args>(args)...));
    }

    /**
     * Run all passes in order, returning one timing/stats record per
     * pass. With opts.verify, the WellFormed checker runs after every
     * pass and failures name the offending pass and component.
     */
    std::vector<PassRunInfo> run(Context &ctx,
                                 const RunOptions &opts) const;

    /** Compatibility overload: run with only verification configured. */
    void run(Context &ctx, bool verify = false) const;

    /** The passes in execution order. */
    const std::vector<std::unique_ptr<Pass>> &pipeline() const
    {
        return passes;
    }

  private:
    std::vector<std::unique_ptr<Pass>> passes;
};

} // namespace calyx::passes

#endif // CALYX_PASSES_PASS_MANAGER_H
