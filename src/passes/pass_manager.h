#ifndef CALYX_PASSES_PASS_MANAGER_H
#define CALYX_PASSES_PASS_MANAGER_H

#include <memory>
#include <string>
#include <vector>

#include "ir/context.h"

namespace calyx::passes {

/**
 * Base class for compiler passes (paper §4: "an open-source pass-based
 * compiler"). Most passes are per-component; whole-program passes
 * override runOnContext. The default context traversal visits components
 * in dependency order so information can flow from callees to callers
 * (e.g. inferred component latencies).
 */
class Pass
{
  public:
    virtual ~Pass() = default;

    virtual std::string name() const = 0;

    virtual void runOnComponent(Component &comp, Context &ctx);

    virtual void runOnContext(Context &ctx);
};

/** Runs a pipeline of passes, optionally validating between passes. */
class PassManager
{
  public:
    /** Append a pass. Returns *this for chaining. */
    PassManager &add(std::unique_ptr<Pass> pass);

    template <typename P, typename... Args>
    PassManager &
    add(Args &&...args)
    {
        return add(std::make_unique<P>(std::forward<Args>(args)...));
    }

    /**
     * Run all passes in order. With `verify`, the WellFormed checker runs
     * after every pass and failures name the offending pass.
     */
    void run(Context &ctx, bool verify = false) const;

  private:
    std::vector<std::unique_ptr<Pass>> passes;
};

} // namespace calyx::passes

#endif // CALYX_PASSES_PASS_MANAGER_H
