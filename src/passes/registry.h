#ifndef CALYX_PASSES_REGISTRY_H
#define CALYX_PASSES_REGISTRY_H

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "passes/pass_manager.h"
#include "support/symbol.h"

namespace calyx::passes {

/**
 * Global registry of named passes (paper §4: "an open-source pass-based
 * compiler" whose optimizations are composable passes). Every pass in
 * src/passes/ self-registers at static-initialization time with a
 * factory, a one-line description, and membership in alias groups, so
 * that drivers discover passes by kebab-case name instead of hard-coding
 * a boolean per pass.
 *
 * Two kinds of alias are supported:
 *  - group aliases, built from the memberships passes declare at
 *    registration time (`pre-opt`, `compile`, `post-opt`); members are
 *    ordered by their declared position so expansion order is
 *    deterministic regardless of static-init order across TUs,
 *  - composite aliases, registered centrally as a spec string that may
 *    itself reference other aliases (`all`, `default`).
 */
class PassRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<Pass>()>;

    /** One alias a pass belongs to, with its position inside the alias. */
    struct AliasMembership
    {
        std::string alias;
        /** Sort key inside the alias (pipeline order matters). */
        int order = 0;
    };

    struct Entry
    {
        std::string name;
        std::string description;
        Factory factory;
        std::vector<AliasMembership> aliases;
    };

    /** The process-wide registry. */
    static PassRegistry &instance();

    /** Register a pass; duplicate names are a fatal error. */
    void registerPass(Entry entry);

    /**
     * Register a composite alias whose expansion is a pipeline-spec
     * string (may reference passes and other aliases).
     */
    void registerAlias(const std::string &name, const std::string &expansion,
                       const std::string &description);

    bool hasPass(const std::string &name) const;
    bool hasAlias(const std::string &name) const;

    /** Entry for a registered pass, or nullptr. */
    const Entry *findPass(const std::string &name) const;

    /**
     * Instantiate a registered pass. Unknown names are a fatal error
     * with a did-you-mean suggestion.
     */
    std::unique_ptr<Pass> create(const std::string &name) const;

    /**
     * Expansion of an alias as a comma-separated spec string. Group
     * aliases expand to their members sorted by declared order;
     * composite aliases return their registered expansion.
     */
    std::string aliasExpansion(const std::string &name) const;

    /** All registered pass names, sorted. */
    std::vector<std::string> passNames() const;

    /** All alias names (group and composite), sorted. */
    std::vector<std::string> aliasNames() const;

    /** One-line description of an alias ("" for group aliases). */
    std::string aliasDescription(const std::string &name) const;

    /** Aliases a pass is a member of, sorted. */
    std::vector<std::string> aliasesOf(const std::string &pass) const;

    /**
     * Closest registered pass or alias name by edit distance, or ""
     * when nothing is near enough to be a plausible typo.
     */
    std::string suggest(const std::string &unknown) const;

  private:
    PassRegistry();

    struct CompositeAlias
    {
        std::string expansion;
        std::string description;
    };

    std::map<Symbol, Entry> entries;
    std::map<Symbol, CompositeAlias> composites;
};

/**
 * Static self-registration helper: a pass translation unit declares
 *
 *   namespace { PassRegistration<CollapseControl> reg{
 *       "collapse-control", "Flatten nested seq/par...",
 *       {{"pre-opt", 10}}}; }
 *
 * and the pass becomes available to every driver by name.
 */
template <typename P> struct PassRegistration
{
    PassRegistration(std::string name, std::string description,
                     std::vector<PassRegistry::AliasMembership> aliases = {})
    {
        PassRegistry::Entry e;
        e.name = std::move(name);
        e.description = std::move(description);
        e.factory = [] { return std::make_unique<P>(); };
        e.aliases = std::move(aliases);
        PassRegistry::instance().registerPass(std::move(e));
    }
};

} // namespace calyx::passes

#endif // CALYX_PASSES_REGISTRY_H
