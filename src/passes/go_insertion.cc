#include "passes/go_insertion.h"

#include "passes/registry.h"

namespace calyx::passes {

void
GoInsertion::gateGroup(Group &group)
{
    GuardPtr go = Guard::fromPort(group.goHole());
    for (auto &a : group.assignments()) {
        bool own_done = a.dst.isHole() && a.dst.parent == group.name() &&
                        a.dst.port == "done";
        if (!own_done)
            a.guard = Guard::conj(a.guard, go);
    }
}

void
GoInsertion::runOnComponent(Component &comp, Context &)
{
    for (const auto &g : comp.groups())
        gateGroup(*g);
}

namespace {
PassRegistration<GoInsertion> registration{
    "go-insertion",
    "Guard group assignments with the group's go hole (§4.2)",
    {{"compile", 20}}};
} // namespace

} // namespace calyx::passes
