#include "passes/go_insertion.h"

namespace calyx::passes {

void
GoInsertion::gateGroup(Group &group)
{
    GuardPtr go = Guard::fromPort(group.goHole());
    for (auto &a : group.assignments()) {
        bool own_done = a.dst.isHole() && a.dst.parent == group.name() &&
                        a.dst.port == "done";
        if (!own_done)
            a.guard = Guard::conj(a.guard, go);
    }
}

void
GoInsertion::runOnComponent(Component &comp, Context &)
{
    for (const auto &g : comp.groups())
        gateGroup(*g);
}

} // namespace calyx::passes
