#ifndef CALYX_PASSES_COLLAPSE_CONTROL_H
#define CALYX_PASSES_COLLAPSE_CONTROL_H

#include "passes/pass_manager.h"

namespace calyx::passes {

/**
 * Control normalization: removes Empty statements from seq/par bodies,
 * unwraps single-statement seq/par nodes, and flattens directly nested
 * seq-in-seq / par-in-par. Keeps downstream FSM generation from paying
 * states for statements that do nothing.
 */
class CollapseControl final : public Pass
{
  public:
    std::string name() const override { return "collapse-control"; }
    void runOnComponent(Component &comp, Context &ctx) override;

    /** Normalize a control tree (exposed for tests and frontends). */
    static ControlPtr collapse(ControlPtr ctrl);
};

} // namespace calyx::passes

#endif // CALYX_PASSES_COLLAPSE_CONTROL_H
