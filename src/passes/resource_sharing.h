#ifndef CALYX_PASSES_RESOURCE_SHARING_H
#define CALYX_PASSES_RESOURCE_SHARING_H

#include "passes/pass_manager.h"

namespace calyx::passes {

/**
 * Resource sharing (paper §5.1): cells marked "share" (combinational
 * functional units) used by groups that can never run in parallel are
 * merged onto one physical cell.
 *
 * Three steps, following the paper:
 *  1. Build the group conflict graph from the control program (edges
 *     between groups under different children of a `par`).
 *  2. Greedy coloring, per cell signature (type + parameters): cells
 *     conflict when two conflicting groups use them, when one group uses
 *     both, or when continuous assignments use them.
 *  3. Rewrite groups (and control condition ports) with the resulting
 *     cell renaming; DeadCellRemoval reclaims the merged-away cells.
 */
class ResourceSharing final : public Pass
{
  public:
    /**
     * @param min_width cost-model heuristic (paper §9 future work):
     *   sharing a W-bit functional unit saves ~W LUTs but each merged
     *   user adds a ~W/2-LUT input mux, so sharing narrow units is a
     *   net loss. Cells narrower than `min_width` are left alone.
     *   0 shares everything (the paper's evaluated behaviour).
     */
    explicit ResourceSharing(Width min_width = 0) : minWidth(min_width) {}

    std::string name() const override { return "resource-sharing"; }

    /** Supports `min-width=<N>` (pipeline-spec `[min-width=N]`). */
    void option(const std::string &key, const std::string &value) override;

    void runOnComponent(Component &comp, Context &ctx) override;

    /** Number of cells merged away in the last run (for reporting). */
    int merged() const { return mergedCount; }

  private:
    Width minWidth;
    int mergedCount = 0;
};

} // namespace calyx::passes

#endif // CALYX_PASSES_RESOURCE_SHARING_H
