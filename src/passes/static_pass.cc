#include "passes/static_pass.h"

#include "passes/registry.h"

#include "analysis/latency.h"
#include "lowering/lower.h"
#include "support/error.h"
#include "support/time.h"

namespace calyx::passes {

std::optional<int64_t>
StaticPass::latencyOf(const Control &ctrl, const Component &comp)
{
    return analysis::controlLatency(ctrl, comp);
}

namespace {

/**
 * Replace maximal static subtrees with enables of counter islands
 * lowered through the FSM stages. Enables themselves are left alone
 * (they are already single groups).
 */
ControlPtr
rewrite(ControlPtr ctrl, Component &comp, Context &ctx, int &islands)
{
    Control::Kind k = ctrl->kind();
    if (k == Control::Kind::Empty || k == Control::Kind::Enable)
        return ctrl;

    auto latency = analysis::controlLatency(*ctrl, comp);
    if (latency && *latency > 0) {
        // This pass runs before GoInsertion, which will gate the
        // island group like any frontend group.
        lowering::LowerOptions opts;
        opts.realize.gate = false;
        Symbol name = lowering::lowerStatic(comp, ctx, *ctrl, *latency,
                                            opts);
        comp.group(name).attrs().set(Attributes::staticAttr, *latency);
        // The seed spent one counter register per island plus one cs
        // condition latch per if inside it — the same latches the
        // builder's static schedule mints, so the flat-vs-seed
        // comparison stays like-for-like.
        islands += 1;
        ctrl->walk([&islands](const Control &node) {
            if (node.kind() == Control::Kind::If)
                islands += 1;
        });
        return std::make_unique<Enable>(name);
    }

    switch (k) {
      case Control::Kind::Seq: {
        auto &stmts = cast<Seq>(*ctrl).stmts();
        for (auto &c : stmts)
            c = rewrite(std::move(c), comp, ctx, islands);
        return ctrl;
      }
      case Control::Kind::Par: {
        auto &stmts = cast<Par>(*ctrl).stmts();
        for (auto &c : stmts)
            c = rewrite(std::move(c), comp, ctx, islands);
        return ctrl;
      }
      case Control::Kind::If: {
        auto &i = cast<If>(*ctrl);
        i.trueBranchPtr() =
            rewrite(std::move(i.trueBranchPtr()), comp, ctx, islands);
        i.falseBranchPtr() =
            rewrite(std::move(i.falseBranchPtr()), comp, ctx, islands);
        return ctrl;
      }
      case Control::Kind::While: {
        auto &w = cast<While>(*ctrl);
        w.bodyPtr() = rewrite(std::move(w.bodyPtr()), comp, ctx, islands);
        return ctrl;
      }
      default:
        return ctrl;
    }
}

} // namespace

void
StaticPass::runOnComponent(Component &comp, Context &ctx)
{
    double t0 = nowSeconds();
    int islands = 0;
    comp.setControl(rewrite(comp.takeControl(), comp, ctx, islands));
    comp.noteFsmLowering(islands, nowSeconds() - t0);
}

namespace {
PassRegistration<StaticPass> registration{
    "static",
    "Compile static control subtrees into counter-driven schedules (§4.4)",
    {{"compile", 10}}};
} // namespace

} // namespace calyx::passes
