#include "passes/static_pass.h"

#include "passes/registry.h"

#include <algorithm>

#include "support/error.h"

namespace calyx::passes {

std::optional<int64_t>
StaticPass::latencyOf(const Control &ctrl, const Component &comp)
{
    switch (ctrl.kind()) {
      case Control::Kind::Empty:
        return 0;
      case Control::Kind::Enable: {
        const Group *g = comp.findGroup(cast<Enable>(ctrl).group());
        if (!g)
            return std::nullopt;
        return g->staticLatency();
      }
      case Control::Kind::Seq: {
        int64_t total = 0;
        for (const auto &c : cast<Seq>(ctrl).stmts()) {
            auto l = latencyOf(*c, comp);
            if (!l)
                return std::nullopt;
            total += *l;
        }
        return total;
      }
      case Control::Kind::Par: {
        int64_t total = 0;
        for (const auto &c : cast<Par>(ctrl).stmts()) {
            auto l = latencyOf(*c, comp);
            if (!l)
                return std::nullopt;
            total = std::max(total, *l);
        }
        return total;
      }
      case Control::Kind::If: {
        const auto &i = cast<If>(ctrl);
        int64_t cond = 1;
        if (!i.condGroup().empty()) {
            const Group *g = comp.findGroup(i.condGroup());
            if (!g || !g->staticLatency())
                return std::nullopt;
            cond = *g->staticLatency();
        }
        auto t = latencyOf(i.trueBranch(), comp);
        auto f = latencyOf(i.falseBranch(), comp);
        if (!t || !f)
            return std::nullopt;
        int64_t hi = std::max(*t, *f);
        int64_t lo = std::min(*t, *f);
        // Profitability: a static if always pays the longer branch.
        // When the branches are very asymmetric (e.g. a guarded update
        // inside a triangular loop), dynamic compilation of the short
        // path is cheaper, so stay best-effort and bail out.
        if (hi > 2 * (lo + 2))
            return std::nullopt;
        return cond + hi;
      }
      case Control::Kind::While:
        // Trip counts are data-dependent; loops stay dynamic.
        return std::nullopt;
    }
    panic("bad control kind");
}

namespace {

/** Builds one static compilation group for a static control subtree. */
class StaticCompiler
{
  public:
    StaticCompiler(Component &comp, Context &ctx) : comp(comp), ctx(ctx) {}

    std::string
    compile(const Control &ctrl, int64_t total)
    {
        Group &g = comp.addGroup(comp.uniqueName("static"));
        width = fsmWidth(static_cast<uint64_t>(total));
        Cell &fsm =
            comp.addCell(comp.uniqueName("fsm"), "std_reg", {width}, ctx);
        fsmOut = cellPort(fsm.name(), "out");
        group = &g;

        schedule(ctrl, 0, Guard::trueGuard());

        // Self-incrementing counter while fsm < total.
        Cell &incr = comp.addCell(comp.uniqueName("incr"), "std_add",
                                  {width}, ctx);
        GuardPtr running = Guard::cmp(Guard::CmpOp::Lt, fsmOut,
                                      constant(total, width));
        g.add(cellPort(incr.name(), "left"), fsmOut);
        g.add(cellPort(incr.name(), "right"), constant(1, width));
        g.add(cellPort(fsm.name(), "in"), cellPort(incr.name(), "out"),
              running);
        g.add(cellPort(fsm.name(), "write_en"), constant(1, 1), running);

        GuardPtr at_end = Guard::cmp(Guard::CmpOp::Eq, fsmOut,
                                     constant(total, width));
        g.add(g.doneHole(), constant(1, 1), at_end);

        // Continuous (ungated) reset: when a static parent stops enabling
        // this group after exactly `total` cycles, the counter still
        // re-arms; when a dynamic parent holds go through the done cycle,
        // this fires in the same cycle as done.
        comp.continuousAssignments().emplace_back(
            cellPort(fsm.name(), "in"), constant(0, width), at_end);
        comp.continuousAssignments().emplace_back(
            cellPort(fsm.name(), "write_en"), constant(1, 1), at_end);

        g.attrs().set(Attributes::staticAttr, total);
        return g.name();
    }

  private:
    /** Guard for fsm in [off, off+len). */
    GuardPtr
    window(int64_t off, int64_t len) const
    {
        if (len == 1)
            return Guard::cmp(Guard::CmpOp::Eq, fsmOut,
                              constant(off, width));
        GuardPtr lo = Guard::cmp(Guard::CmpOp::Geq, fsmOut,
                                 constant(off, width));
        GuardPtr hi = Guard::cmp(Guard::CmpOp::Lt, fsmOut,
                                 constant(off + len, width));
        if (off == 0)
            return hi;
        return Guard::conj(lo, hi);
    }

    /**
     * Emit go assignments realizing `ctrl` starting at cycle `off` under
     * `path` (the conjunction of enclosing branch conditions).
     */
    void
    schedule(const Control &ctrl, int64_t off, const GuardPtr &path)
    {
        switch (ctrl.kind()) {
          case Control::Kind::Empty:
            return;
          case Control::Kind::Enable: {
            const std::string &name = cast<Enable>(ctrl).group();
            int64_t latency = *comp.group(name).staticLatency();
            if (latency == 0)
                return;
            group->add(holePort(name, "go"), constant(1, 1),
                       Guard::conj(window(off, latency), path));
            return;
          }
          case Control::Kind::Seq: {
            for (const auto &c : cast<Seq>(ctrl).stmts()) {
                schedule(*c, off, path);
                off += *StaticPass::latencyOf(*c, comp);
            }
            return;
          }
          case Control::Kind::Par:
            for (const auto &c : cast<Par>(ctrl).stmts())
                schedule(*c, off, path);
            return;
          case Control::Kind::If: {
            const auto &i = cast<If>(ctrl);
            int64_t cond_latency = 1;
            if (!i.condGroup().empty()) {
                cond_latency = *comp.group(i.condGroup()).staticLatency();
                group->add(holePort(i.condGroup(), "go"), constant(1, 1),
                           Guard::conj(window(off, cond_latency), path));
            }
            // Latch the condition on the last cycle of its window.
            Cell &cs = comp.addCell(comp.uniqueName("cs"), "std_reg", {1},
                                    ctx);
            GuardPtr latch =
                Guard::conj(window(off + cond_latency - 1, 1), path);
            group->add(cellPort(cs.name(), "in"), i.condPort(), latch);
            group->add(cellPort(cs.name(), "write_en"), constant(1, 1),
                       latch);
            GuardPtr cs_out = Guard::fromPort(cellPort(cs.name(), "out"));
            schedule(i.trueBranch(), off + cond_latency,
                     Guard::conj(path, cs_out));
            schedule(i.falseBranch(), off + cond_latency,
                     Guard::conj(path, Guard::negate(cs_out)));
            return;
          }
          case Control::Kind::While:
            panic("while inside a static region");
        }
    }

    Component &comp;
    Context &ctx;
    Group *group = nullptr;
    PortRef fsmOut;
    Width width = 0;
};

/**
 * Replace maximal static subtrees with enables of static groups.
 * Enables themselves are left alone (they are already single groups).
 */
ControlPtr
rewrite(ControlPtr ctrl, Component &comp, Context &ctx)
{
    Control::Kind k = ctrl->kind();
    if (k == Control::Kind::Empty || k == Control::Kind::Enable)
        return ctrl;

    auto latency = StaticPass::latencyOf(*ctrl, comp);
    if (latency && *latency > 0) {
        StaticCompiler compiler(comp, ctx);
        std::string name = compiler.compile(*ctrl, *latency);
        return std::make_unique<Enable>(name);
    }

    switch (k) {
      case Control::Kind::Seq: {
        auto &stmts = cast<Seq>(*ctrl).stmts();
        for (auto &c : stmts)
            c = rewrite(std::move(c), comp, ctx);
        return ctrl;
      }
      case Control::Kind::Par: {
        auto &stmts = cast<Par>(*ctrl).stmts();
        for (auto &c : stmts)
            c = rewrite(std::move(c), comp, ctx);
        return ctrl;
      }
      case Control::Kind::If: {
        auto &i = cast<If>(*ctrl);
        i.trueBranchPtr() =
            rewrite(std::move(i.trueBranchPtr()), comp, ctx);
        i.falseBranchPtr() =
            rewrite(std::move(i.falseBranchPtr()), comp, ctx);
        return ctrl;
      }
      case Control::Kind::While: {
        auto &w = cast<While>(*ctrl);
        w.bodyPtr() = rewrite(std::move(w.bodyPtr()), comp, ctx);
        return ctrl;
      }
      default:
        return ctrl;
    }
}

} // namespace

void
StaticPass::runOnComponent(Component &comp, Context &ctx)
{
    comp.setControl(rewrite(comp.takeControl(), comp, ctx));
}

namespace {
PassRegistration<StaticPass> registration{
    "static",
    "Compile static control subtrees into counter-driven schedules (§4.4)",
    {{"compile", 10}}};
} // namespace

} // namespace calyx::passes
