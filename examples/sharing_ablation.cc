/**
 * @file
 * Optimization example (paper §5, §7.3): run one PolyBench kernel in
 * four optimization configurations — none, resource sharing, register
 * sharing, both — and report how the adder/register counts and the LUT
 * estimate respond (including the paper's observation that sharing can
 * *increase* LUTs because of the added multiplexers).
 */
#include <iostream>
#include <string>

#include "frontends/dahlia/parser.h"
#include "workloads/harness.h"
#include "workloads/polybench.h"

using namespace calyx;

int
main()
{
    const auto &kernel = workloads::kernel("gemm");
    dahlia::Program prog = dahlia::parse(kernel.source);
    workloads::MemState inputs =
        workloads::makeInputs(kernel.name, prog);
    workloads::MemState golden = workloads::runOnInterp(prog, inputs);

    struct Config
    {
        const char *name;
        bool resource, registers;
    };
    const Config configs[] = {
        {"baseline            ", false, false},
        {"resource sharing    ", true, false},
        {"register sharing    ", false, true},
        {"both                ", true, true},
    };

    std::cout << "gemm (8x8), latency-insensitive compilation\n";
    std::cout << "config                cycles   LUTs     FFs   "
                 "registers  correct\n";
    for (const auto &c : configs) {
        std::string spec = "all,-static";
        if (!c.resource)
            spec += ",-resource-sharing";
        if (!c.registers)
            spec += ",-register-sharing";
        workloads::MemState final_state;
        auto hw =
            workloads::runOnHardware(prog, spec, inputs, &final_state);
        std::cout << c.name << "  " << hw.cycles << "   "
                  << static_cast<int>(hw.area.luts) << "   "
                  << static_cast<int>(hw.area.ffs) << "   "
                  << hw.area.registers << "       "
                  << (final_state == golden ? "yes" : "NO") << "\n";
        if (final_state != golden)
            return 1;
    }
    return 0;
}
