/**
 * @file
 * Dahlia example (paper §6.2): compile a small imperative kernel —
 * a dot product with an extra sqrt to exercise mixed
 * latency-sensitive/insensitive compilation — through check, lower,
 * codegen, the full Calyx pipeline, and simulation, validating against
 * the AST interpreter.
 */
#include <iostream>

#include "frontends/dahlia/codegen.h"
#include "frontends/dahlia/parser.h"
#include "ir/printer.h"
#include "workloads/harness.h"

using namespace calyx;

namespace {

const char *kernel_src = R"(
decl a: ubit<32>[8];
decl b: ubit<32>[8];
decl out: ubit<32>[1];
let acc: ubit<32> = 0;
---
for (let i: ubit<4> = 0..8) {
  acc := acc + a[i] * b[i];
}
---
out[0] := sqrt(acc);
)";

} // namespace

int
main()
{
    dahlia::Program prog = dahlia::parse(kernel_src);

    // Show the generated Calyx.
    Context preview = dahlia::compileDahlia(prog);
    std::cout << "==== Generated Calyx ====\n"
              << Printer::toString(preview) << "\n";

    workloads::MemState inputs =
        workloads::makeInputs("dot", prog);

    // Software oracle.
    workloads::MemState golden = workloads::runOnInterp(prog, inputs);

    // Hardware, both compilation modes.
    for (bool sensitive : {false, true}) {
        workloads::MemState final_state;
        auto hw = workloads::runOnHardware(
            prog, sensitive ? "all,-resource-sharing,-register-sharing" : "default",
            inputs, &final_state);
        bool ok = final_state == golden;
        std::cout << (sensitive ? "latency-sensitive  "
                                : "latency-insensitive")
                  << ": " << hw.cycles << " cycles, sqrt(dot) = "
                  << final_state.at("out")[0] << ", "
                  << (ok ? "matches interpreter" : "MISMATCH") << "\n";
        if (!ok)
            return 1;
    }
    return 0;
}
