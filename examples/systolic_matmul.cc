/**
 * @file
 * Systolic-array example (paper §6.1): generate a 4x4 matrix-multiply
 * systolic array, let the compiler infer all latencies from the PE
 * (§5.3), compile both latency-insensitively and -sensitively, and
 * check the product against a software matmul.
 */
#include <cstdint>
#include <iostream>
#include <vector>

#include "frontends/systolic/systolic.h"
#include "ir/printer.h"
#include "passes/pipeline.h"
#include "sim/cycle_sim.h"

using namespace calyx;

namespace {

constexpr int DIM = 4;

void
fill(sim::SimProgram &sp, const std::vector<std::vector<uint64_t>> &a,
     const std::vector<std::vector<uint64_t>> &bt)
{
    for (int i = 0; i < DIM; ++i) {
        auto *l = sp.findModel(systolic::leftMemName(i))->memory();
        for (int k = 0; k < DIM; ++k)
            (*l)[k] = a[i][k];
    }
    for (int j = 0; j < DIM; ++j) {
        auto *t = sp.findModel(systolic::topMemName(j))->memory();
        for (int k = 0; k < DIM; ++k)
            (*t)[k] = bt[j][k]; // column j of B
    }
}

} // namespace

int
main()
{
    std::vector<std::vector<uint64_t>> a(DIM, std::vector<uint64_t>(DIM));
    std::vector<std::vector<uint64_t>> b(DIM, std::vector<uint64_t>(DIM));
    for (int i = 0; i < DIM; ++i) {
        for (int j = 0; j < DIM; ++j) {
            a[i][j] = i + 2 * j + 1;
            b[i][j] = 3 * i + j + 2;
        }
    }
    std::vector<std::vector<uint64_t>> bt(DIM, std::vector<uint64_t>(DIM));
    for (int i = 0; i < DIM; ++i)
        for (int j = 0; j < DIM; ++j)
            bt[j][i] = b[i][j];

    for (bool sensitive : {false, true}) {
        Context ctx;
        systolic::Config cfg;
        cfg.rows = cfg.cols = cfg.inner = DIM;
        systolic::generate(ctx, cfg);

        passes::DesignStats stats = passes::gatherStats(ctx);
        passes::runPipeline(ctx, sensitive
                                     ? "all,-resource-sharing,-register-sharing"
                                     : "default");

        sim::SimProgram sp(ctx, "main");
        fill(sp, a, bt);
        sim::CycleSim cs(sp);
        uint64_t cycles = cs.run();

        auto *out = sp.findModel(systolic::outMemName)->memory();
        bool ok = true;
        for (int i = 0; i < DIM; ++i) {
            for (int j = 0; j < DIM; ++j) {
                uint64_t expect = 0;
                for (int k = 0; k < DIM; ++k)
                    expect += a[i][k] * b[k][j];
                if ((*out)[i * DIM + j] != expect)
                    ok = false;
            }
        }
        std::cout << (sensitive ? "latency-sensitive  "
                                : "latency-insensitive")
                  << ": " << cycles << " cycles, "
                  << (ok ? "result correct" : "RESULT WRONG") << " ("
                  << stats.cells << " cells, " << stats.groups
                  << " groups, " << stats.controlStatements
                  << " control statements)\n";
        if (!ok)
            return 1;
    }
    return 0;
}
