/**
 * @file
 * Quickstart: the paper's running example (§2) — a parallel reduction
 * tree summing four memory elements — built with the public builder
 * API, interpreted, compiled, simulated, and emitted as SystemVerilog.
 *
 * Demonstrates the split representation: groups define the data path,
 * the control program (while/seq/par) defines the execution schedule.
 */
#include <iostream>

#include "emit/verilog.h"
#include "ir/builder.h"
#include "ir/printer.h"
#include "passes/pipeline.h"
#include "sim/cycle_sim.h"
#include "sim/interp.h"
#include "support/text.h"

using namespace calyx;

namespace {

/**
 * Reduction tree over four 4-element memories (Figure 1): every step
 * adds m1[i]+m2[i] and m3[i]+m4[i] in parallel (layer 1), then combines
 * the two partial sums (layer 2), accumulating into r2.
 */
Context
buildReductionTree()
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");

    for (int m = 1; m <= 4; ++m)
        b.mem1d("m" + std::to_string(m), 32, 4);
    b.reg("r0", 32);
    b.reg("r1", 32);
    b.reg("r2", 32);
    b.reg("i", 3);
    b.add("a0", 32);
    b.add("a1", 32);
    b.add("a2", 32);
    b.add("acc", 32);
    b.add("incr", 3);
    b.cell("cmp", "std_lt", {3});
    // The 3-bit counter (counts to 4) narrows to the 2-bit address.
    b.cell("iaddr", "std_slice", {3, 2});
    Component &comp = b.component();
    comp.continuousAssignments().emplace_back(cellPort("iaddr", "in"),
                                              cellPort("i", "out"));

    // Layer 1: r0 = m1[i] + m2[i], r1 = m3[i] + m4[i].
    Group &add0 = b.group("add0");
    add0.add(cellPort("m1", "addr0"), cellPort("iaddr", "out"));
    add0.add(cellPort("m2", "addr0"), cellPort("iaddr", "out"));
    add0.add(cellPort("a0", "left"), cellPort("m1", "read_data"));
    add0.add(cellPort("a0", "right"), cellPort("m2", "read_data"));
    add0.add(cellPort("r0", "in"), cellPort("a0", "out"));
    add0.add(cellPort("r0", "write_en"), constant(1, 1));
    add0.add(add0.doneHole(), cellPort("r0", "done"));

    Group &add1 = b.group("add1");
    add1.add(cellPort("m3", "addr0"), cellPort("iaddr", "out"));
    add1.add(cellPort("m4", "addr0"), cellPort("iaddr", "out"));
    add1.add(cellPort("a1", "left"), cellPort("m3", "read_data"));
    add1.add(cellPort("a1", "right"), cellPort("m4", "read_data"));
    add1.add(cellPort("r1", "in"), cellPort("a1", "out"));
    add1.add(cellPort("r1", "write_en"), constant(1, 1));
    add1.add(add1.doneHole(), cellPort("r1", "done"));

    // Layer 2: r2 += r0 + r1.
    Group &add2 = b.group("add2");
    add2.add(cellPort("a2", "left"), cellPort("r0", "out"));
    add2.add(cellPort("a2", "right"), cellPort("r1", "out"));
    add2.add(cellPort("acc", "left"), cellPort("r2", "out"));
    add2.add(cellPort("acc", "right"), cellPort("a2", "out"));
    add2.add(cellPort("r2", "in"), cellPort("acc", "out"));
    add2.add(cellPort("r2", "write_en"), constant(1, 1));
    add2.add(add2.doneHole(), cellPort("r2", "done"));

    Group &incr_idx = b.group("incr_idx");
    incr_idx.add(cellPort("incr", "left"), cellPort("i", "out"));
    incr_idx.add(cellPort("incr", "right"), constant(1, 3));
    incr_idx.add(cellPort("i", "in"), cellPort("incr", "out"));
    incr_idx.add(cellPort("i", "write_en"), constant(1, 1));
    incr_idx.add(incr_idx.doneHole(), cellPort("i", "done"));

    Group &cond = b.group("cond");
    cond.add(cellPort("cmp", "left"), cellPort("i", "out"));
    cond.add(cellPort("cmp", "right"), constant(4, 3));
    cond.add(cond.doneHole(), constant(1, 1));

    // Schedule (Figure 1a): while i < 4: par{add0, add1}; add2; i++.
    std::vector<ControlPtr> layer1;
    layer1.push_back(ComponentBuilder::enable("add0"));
    layer1.push_back(ComponentBuilder::enable("add1"));
    std::vector<ControlPtr> body;
    body.push_back(ComponentBuilder::par(std::move(layer1)));
    body.push_back(ComponentBuilder::enable("add2"));
    body.push_back(ComponentBuilder::enable("incr_idx"));
    b.component().setControl(ComponentBuilder::whileStmt(
        cellPort("cmp", "out"), "cond",
        ComponentBuilder::seq(std::move(body))));
    return ctx;
}

void
fillInputs(sim::SimProgram &sp)
{
    for (int m = 1; m <= 4; ++m) {
        auto *mem = sp.findModel("m" + std::to_string(m))->memory();
        for (int i = 0; i < 4; ++i)
            (*mem)[i] = m * 10 + i; // m1 = {10,11,12,13}, ...
    }
}

} // namespace

int
main()
{
    // 1. Build and pretty-print the source program.
    Context source = buildReductionTree();
    std::cout << "==== Calyx source ====\n"
              << Printer::toString(source) << "\n";

    // 2. Execute with the reference interpreter.
    {
        sim::SimProgram sp(source, "main");
        fillInputs(sp);
        sim::Interp interp(sp);
        uint64_t cycles = interp.run();
        std::cout << "interpreter: sum = "
                  << *sp.findModel("r2")->registerValue() << " in "
                  << cycles << " cycles\n";
    }

    // 3. Compile to structural form and simulate (Verilator stand-in).
    for (bool sensitive : {false, true}) {
        Context ctx = buildReductionTree();
        passes::runPipeline(ctx, sensitive
                                     ? "all,-resource-sharing,-register-sharing"
                                     : "default");
        sim::SimProgram sp(ctx, "main");
        fillInputs(sp);
        sim::CycleSim cs(sp);
        uint64_t cycles = cs.run();
        std::cout << (sensitive ? "latency-sensitive  "
                                : "latency-insensitive")
                  << ": sum = " << *sp.findModel("r2")->registerValue()
                  << " in " << cycles << " cycles\n";
    }

    // 4. Emit SystemVerilog.
    Context ctx = buildReductionTree();
    passes::runPipeline(ctx, "default");
    std::string sv = emit::VerilogBackend().emitString(ctx);
    std::cout << "emitted " << countLines(sv)
              << " lines of SystemVerilog\n";
    return 0;
}
